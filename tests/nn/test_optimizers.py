"""Optimiser update rules."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, AdamW, RMSProp, get_optimizer


def _quadratic_descent(opt, steps=200):
    """Minimise f(w) = ||w||² from w0; return final norm."""
    w = np.array([3.0, -2.0])
    for _ in range(steps):
        opt.step([w], [2 * w])
    return float(np.linalg.norm(w))


@pytest.mark.parametrize(
    "opt,tol",
    [
        (SGD(lr=0.05), 1e-2),
        (SGD(lr=0.05, momentum=0.9), 1e-2),
        (SGD(lr=0.05, momentum=0.9, nesterov=True), 1e-2),
        (Adam(lr=0.1), 1e-2),
        (AdamW(lr=0.1, weight_decay=0.001), 1e-2),
        # RMSProp with constant lr limit-cycles at step-size scale.
        (RMSProp(lr=0.01), 0.05),
    ],
    ids=["sgd", "sgd-mom", "sgd-nesterov", "adam", "adamw", "rmsprop"],
)
def test_converges_on_quadratic(opt, tol):
    assert _quadratic_descent(opt, steps=500) < tol


def test_sgd_plain_matches_formula():
    opt = SGD(lr=0.1)
    w = np.array([1.0])
    opt.step([w], [np.array([0.5])])
    np.testing.assert_allclose(w, [0.95])


def test_adam_first_step_magnitude():
    # With bias correction the first step is ~lr regardless of grad scale.
    for scale in (1e-4, 1.0, 1e4):
        opt = Adam(lr=0.01)
        w = np.array([0.0])
        opt.step([w], [np.array([scale])])
        # eps in the denominator matters at tiny gradient scales.
        np.testing.assert_allclose(abs(w[0]), 0.01, rtol=1e-3)


def test_adamw_decays_without_gradient():
    opt = AdamW(lr=0.1, weight_decay=0.5)
    w = np.array([1.0])
    opt.step([w], [np.array([0.0])])
    assert w[0] < 1.0


def test_slots_keyed_by_position():
    opt = Adam(lr=0.1)
    w1, w2 = np.zeros(2), np.zeros(3)
    opt.step([w1, w2], [np.ones(2), np.ones(3)])
    assert sorted(opt._slots) == [0, 1]
    # A *new* array of the same shape at the same position keeps the slot
    # (position identifies the logical parameter, not the allocation) …
    m_before = opt._slots[0]["m"].copy()
    opt.step([np.zeros(2), np.zeros(3)], [np.ones(2), np.ones(3)])
    assert not np.array_equal(opt._slots[0]["m"], m_before)  # moments advanced


def test_slot_reinitialised_on_shape_change():
    opt = Adam(lr=0.1)
    opt.step([np.zeros(2)], [np.ones(2)])
    # A differently-shaped parameter at position 0 gets a fresh slot
    # instead of crashing into the stale (2,)-shaped moments.
    w = np.zeros(5)
    opt.step([w], [np.ones(5)])
    assert opt._slots[0]["m"].shape == (5,)


def test_reset_clears_slot_state():
    opt = Adam(lr=0.1)
    w = np.zeros(2)
    opt.step([w], [np.ones(2)])
    assert opt._slots
    opt.reset()
    assert not opt._slots
    # After reset the next step bias-corrects like a first step again.
    w2 = np.zeros(1)
    opt.step([w2], [np.array([10.0])])
    np.testing.assert_allclose(abs(w2[0]), opt.lr, rtol=1e-3)


def test_clip_norm_scales_grads_in_place():
    opt = SGD(lr=1.0, clip_norm=1.0)
    g1, g2 = np.full(2, 100.0), np.full(2, 100.0)
    opt.step([np.zeros(2), np.zeros(2)], [g1, g2])
    # No scaled copies: the caller's gradient arrays were clipped in place.
    total = np.sqrt((g1**2).sum() + (g2**2).sum())
    np.testing.assert_allclose(total, 1.0)


def test_validation():
    with pytest.raises(ValueError):
        SGD(lr=0.0)
    with pytest.raises(ValueError):
        SGD(momentum=1.5)
    with pytest.raises(ValueError):
        SGD(nesterov=True)  # needs momentum
    with pytest.raises(ValueError):
        Adam(beta1=1.0)
    with pytest.raises(ValueError):
        RMSProp(rho=-0.1)
    with pytest.raises(ValueError):
        AdamW(weight_decay=-1)
    opt = SGD(lr=0.1)
    with pytest.raises(ValueError):
        opt.step([np.zeros(2)], [np.zeros(3)])
    with pytest.raises(ValueError):
        opt.step([np.zeros(2)], [])


def test_gradient_clipping_bounds_update():
    opt = SGD(lr=1.0, clip_norm=1.0)
    w1, w2 = np.zeros(2), np.zeros(2)
    opt.step([w1, w2], [np.full(2, 100.0), np.full(2, 100.0)])
    # Global grad norm 200 clipped to 1 -> step length exactly lr * 1.
    total_step = np.sqrt((w1**2).sum() + (w2**2).sum())
    np.testing.assert_allclose(total_step, 1.0)


def test_clipping_inactive_below_threshold():
    opt = SGD(lr=0.1, clip_norm=1e9)
    w = np.zeros(2)
    opt.step([w], [np.ones(2)])
    np.testing.assert_allclose(w, -0.1)


def test_clip_norm_validation():
    with pytest.raises(ValueError):
        SGD(clip_norm=0.0)
    with pytest.raises(ValueError):
        Adam(clip_norm=-1.0)


def test_registry():
    assert isinstance(get_optimizer("adam", lr=0.5), Adam)
    with pytest.raises(KeyError):
        get_optimizer("nope")
