"""Activation forward values and exact derivatives (hypothesis-checked)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.activations import (
    ELU,
    GELU,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    get_activation,
)

ALL = [Identity(), ReLU(), LeakyReLU(0.1), ELU(), Sigmoid(), Tanh(), GELU()]


def test_known_values():
    x = np.array([-2.0, 0.0, 3.0])
    np.testing.assert_allclose(ReLU().forward(x), [0, 0, 3])
    np.testing.assert_allclose(LeakyReLU(0.1).forward(x), [-0.2, 0, 3])
    np.testing.assert_allclose(ELU().forward(x), [np.expm1(-2), 0, 3])
    np.testing.assert_allclose(Sigmoid().forward(np.zeros(1)), [0.5])
    np.testing.assert_allclose(Identity().forward(x), x)


@pytest.mark.parametrize("fn", ALL, ids=lambda f: f.name)
@given(
    xs=st.lists(
        st.floats(-5, 5, allow_nan=False).filter(lambda v: abs(v) > 1e-3),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=25, deadline=None)
def test_derivative_matches_finite_difference(fn, xs):
    x = np.asarray(xs)
    eps = 1e-6
    out = fn.forward(x)
    grad = fn.backward(np.ones_like(x), x, out)
    numeric = (fn.forward(x + eps) - fn.forward(x - eps)) / (2 * eps)
    np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-6)


def test_elu_continuity_at_zero():
    e = ELU(alpha=1.3)
    left = e.forward(np.array([-1e-12]))
    right = e.forward(np.array([1e-12]))
    np.testing.assert_allclose(left, right, atol=1e-10)


def test_registry():
    assert isinstance(get_activation("elu", alpha=0.5), ELU)
    assert get_activation("elu", alpha=0.5).alpha == 0.5
    with pytest.raises(KeyError):
        get_activation("nope")


def test_param_validation():
    with pytest.raises(ValueError):
        ELU(alpha=0.0)
    with pytest.raises(ValueError):
        LeakyReLU(alpha=-1.0)


def test_sigmoid_stable_extremes():
    s = Sigmoid().forward(np.array([-1000.0, 1000.0]))
    assert np.all(np.isfinite(s))
    np.testing.assert_allclose(s, [0.0, 1.0], atol=1e-12)
