"""Sequential training loop and whole-network gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Adam,
    BatchNorm1d,
    Dense,
    Dropout,
    EarlyStopping,
    Sequential,
)
from repro.nn.gradcheck import max_gradient_error


def _make_net(loss="mse", hidden=8, in_dim=4, bn=False, dropout=0.0):
    layers = [Dense(in_dim, hidden, seed=1)]
    if bn:
        layers.append(BatchNorm1d(hidden))
    layers += [Activation("elu")]
    if dropout:
        layers.append(Dropout(dropout, seed=2))
    layers.append(Dense(hidden, 1, seed=3))
    return Sequential(layers).compile(loss, Adam(lr=1e-2))


@pytest.mark.parametrize("loss", ["mse", "mae", "smooth_l1"])
@pytest.mark.parametrize("bn", [False, True])
def test_whole_network_gradients_exact(loss, bn):
    rng = np.random.default_rng(0)
    net = _make_net(loss=loss, bn=bn)
    X = rng.normal(size=(12, 4))
    y = rng.normal(size=(12,)) + 0.05  # keep off loss kinks
    assert max_gradient_error(net, X, y) < 1e-6


def test_bce_network_gradients_exact():
    rng = np.random.default_rng(1)
    net = _make_net(loss="bce_logits")
    X = rng.normal(size=(12, 4))
    y = (rng.random(12) > 0.5).astype(float)
    assert max_gradient_error(net, X, y) < 1e-6


def test_learns_linear_function():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(600, 4))
    y = X @ np.array([1.0, -2.0, 0.5, 3.0])
    net = _make_net(hidden=32)
    net.fit(X, y, epochs=60, batch_size=64, seed=0)
    pred = net.predict(X)
    assert np.corrcoef(pred, y)[0, 1] > 0.99


def test_loss_decreases_during_training():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 4))
    y = np.sin(X[:, 0])
    net = _make_net(hidden=16)
    hist = net.fit(X, y, epochs=20, batch_size=32, seed=0)
    losses = hist.series("loss")
    assert losses[-1] < losses[0] * 0.8


def test_early_stopping_restores_best():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(100, 4))
    y = rng.normal(size=100)  # pure noise: val loss will wander
    net = _make_net(hidden=8)
    stop = EarlyStopping(monitor="val_loss", patience=2)
    hist = net.fit(
        X[:80],
        y[:80],
        epochs=50,
        validation_data=(X[80:], y[80:]),
        callbacks=[stop],
        seed=0,
    )
    n_epochs = len(hist.epochs)
    assert n_epochs < 50  # stopped early
    # Restored weights reproduce the best recorded val loss.
    best = min(e["val_loss"] for e in hist.epochs)
    np.testing.assert_allclose(net.evaluate(X[80:], y[80:]), best, rtol=1e-9)


def test_validation_loss_logged():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(60, 4))
    y = rng.normal(size=60)
    net = _make_net()
    hist = net.fit(X, y, epochs=2, validation_data=(X, y), seed=0)
    assert "val_loss" in hist.epochs[0]


def test_predict_batching_consistent():
    rng = np.random.default_rng(0)
    net = _make_net()
    X = rng.normal(size=(97, 4))
    # float32 BLAS kernels may reorder accumulation with the batch shape,
    # so the tolerance tracks the policy dtype; float64 stays near-exact.
    atol = 1e-12 if net.dtype == np.float64 else 1e-5
    np.testing.assert_allclose(
        net.predict(X, batch_size=8), net.predict(X, batch_size=1000), atol=atol
    )


def test_fit_requires_compile():
    net = Sequential([Dense(2, 1)])
    with pytest.raises(RuntimeError, match="compile"):
        net.fit(np.zeros((4, 2)), np.zeros(4), epochs=1)
    with pytest.raises(RuntimeError, match="compile"):
        net.evaluate(np.zeros((4, 2)), np.zeros(4))


def test_fit_validates_args():
    net = _make_net()
    with pytest.raises(ValueError):
        net.fit(np.zeros((4, 4)), np.zeros(4), epochs=0)
    with pytest.raises(ValueError):
        net.fit(np.zeros((4, 4)), np.zeros(3), epochs=1)


def test_deterministic_given_seed():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(50, 4))
    y = rng.normal(size=50)

    def train():
        net = _make_net(dropout=0.2)
        net.fit(X, y, epochs=3, seed=7)
        return net.predict(X)

    np.testing.assert_array_equal(train(), train())


def test_n_parameters():
    net = _make_net(hidden=8, in_dim=4)
    assert net.n_parameters == (4 * 8 + 8) + (8 * 1 + 1)
