"""Interval-coverage evaluation."""

import numpy as np
import pytest

from repro.core.config import RegressorConfig
from repro.core.regressor import QueueTimeRegressor
from repro.eval.calibration import coverage_curve, interval_coverage


def test_interval_coverage_known_values():
    y = np.array([1.0, 2.0, 3.0, 4.0])
    lo = np.array([0.0, 2.5, 2.0, 0.0])
    hi = np.array([2.0, 3.0, 5.0, 1.0])
    stats = interval_coverage(y, lo, hi)
    assert stats["coverage"] == 0.5  # y[0], y[2] inside
    assert stats["below"] == 0.25  # y[1] below its interval
    assert stats["above"] == 0.25  # y[3] above its interval
    np.testing.assert_allclose(stats["mean_width"], np.mean(hi - lo))


def test_interval_coverage_validation():
    with pytest.raises(ValueError):
        interval_coverage(np.ones(2), np.array([1.0, 2.0]), np.array([0.5, 3.0]))
    with pytest.raises(ValueError):
        interval_coverage(np.ones(2), np.ones(3), np.ones(2))


def test_coverage_curve_monotone_in_nominal():
    """Wider nominal coverage must give wider, more-covering intervals."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2500, 4))
    minutes = np.exp(2.0 + X[:, 0] + 0.3 * rng.normal(size=2500))
    reg = QueueTimeRegressor(
        4, RegressorConfig(hidden=(32, 16), epochs=25, patience=5, dropout=0.25), seed=0
    ).fit(X, minutes)
    rows = coverage_curve(
        reg, X[-500:], minutes[-500:], alphas=np.array([0.5, 0.1])
    )
    assert rows[0]["nominal"] == 0.5 and rows[1]["nominal"] == 0.9
    assert rows[1]["mean_width"] >= rows[0]["mean_width"]
    assert rows[1]["coverage"] >= rows[0]["coverage"]
    # MC dropout reflects epistemic spread only; it may undercover noisy
    # targets, but must produce *some* meaningful coverage.
    assert rows[1]["coverage"] > 0.05
