"""The model zoo lives in ``repro.core.zoo``; ``repro.eval.comparison``
is a lazy re-export shim kept for backwards compatibility.  These tests
pin both halves of that contract: old import paths still work and return
the *same* objects, and merely importing the eval layer no longer drags
in the core layer (the IMP001 inversion the move fixed)."""

from __future__ import annotations

import subprocess
import sys

import pytest

SHIM_NAMES = (
    "ModelScore",
    "ComparisonResult",
    "compare_models",
    "default_model_zoo",
)


def test_shim_attributes_are_the_zoo_objects():
    import repro.core.zoo as zoo
    import repro.eval.comparison as comparison

    for name in SHIM_NAMES:
        assert getattr(comparison, name) is getattr(zoo, name)


def test_shim_dir_advertises_the_public_names():
    import repro.eval.comparison as comparison

    assert set(SHIM_NAMES) <= set(dir(comparison))


def test_shim_unknown_attribute_raises_attribute_error():
    import repro.eval.comparison as comparison

    with pytest.raises(AttributeError, match="does_not_exist"):
        comparison.does_not_exist


def test_importing_eval_does_not_import_core():
    """The shim defers its ``repro.core.zoo`` import to first attribute
    access, so the eval layer is importable without the core layer."""
    code = (
        "import sys\n"
        "import repro.eval\n"
        "import repro.eval.comparison\n"
        "core = [m for m in sys.modules if m.startswith('repro.core')]\n"
        "assert not core, f'eval import pulled in {core}'\n"
        "repro.eval.comparison.default_model_zoo\n"
        "assert 'repro.core.zoo' in sys.modules\n"
    )
    subprocess.run(
        [sys.executable, "-c", code], check=True, timeout=120
    )
