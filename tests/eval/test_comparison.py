"""Model-zoo comparison harness."""

import numpy as np
import pytest

from repro.core import TroutConfig
from repro.core.config import ClassifierConfig, RegressorConfig
from repro.eval.comparison import ComparisonResult, ModelScore, compare_models


@pytest.fixture(scope="module")
def comparison(feature_matrix):
    fm, _ = feature_matrix
    cfg = TroutConfig(
        regressor=RegressorConfig(hidden=(32, 16), epochs=15, patience=3), seed=0
    )
    # Small zoo on the last two folds keeps the test quick.
    from repro.eval.comparison import default_model_zoo

    zoo = default_model_zoo(fm.X.shape[1], cfg, seed=0)
    zoo["xgboost"] = (lambda inner: (lambda k: inner(k)))(zoo["xgboost"])
    return compare_models(fm, cfg, folds=[4, 5])


def test_all_models_scored_per_fold(comparison):
    assert set(comparison.models()) == {"neural_net", "xgboost", "random_forest", "knn"}
    for fold in (4, 5):
        series = comparison.series("mape", fold)
        assert len(series) == 4
        assert all(v > 0 for v in series.values())


def test_within100_bounded(comparison):
    for s in comparison.scores:
        assert 0.0 <= s.within_100 <= 1.0


def test_per_fold_pivot(comparison):
    pivot = comparison.per_fold("mape")
    assert all(len(v) == 2 for v in pivot.values())


def test_winner_helper():
    scores = [
        ModelScore("a", 1, mape=50.0, within_100=0.9, pearson=0.5, n_test=10),
        ModelScore("b", 1, mape=80.0, within_100=0.7, pearson=0.4, n_test=10),
    ]
    r = ComparisonResult(scores)
    assert r.winner("mape", 1) == "a"
    assert r.winner("within_100", 1, smaller_is_better=False) == "a"
