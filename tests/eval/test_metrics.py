"""Evaluation metrics — including the paper's own worked example."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    absolute_percentage_error,
    binary_accuracy,
    confusion_binary,
    mean_absolute_percentage_error,
    median_absolute_percentage_error,
    pearson_r,
    within_percent_error,
)


def test_paper_worked_example():
    """§III: 'predicting one minute when the true value is 10 minutes
    (900% off) versus predicting 10 minutes when the true value is 30
    minutes (200% off)'."""
    assert absolute_percentage_error(np.array([10.0]), np.array([1.0]))[0] == 90.0
    # (the paper quotes the inverse direction: 1 -> 10 is 900 %)
    assert absolute_percentage_error(np.array([1.0]), np.array([10.0]))[0] == 900.0
    np.testing.assert_allclose(
        absolute_percentage_error(np.array([30.0]), np.array([10.0]))[0],
        100 * 20 / 30,
    )


def test_symmetric_scale_property():
    """§IV: 'a one-minute prediction for a delay of two minutes and a
    one-day prediction for a delay of two days will both yield 100% error'."""
    small = mean_absolute_percentage_error(np.array([2.0]), np.array([1.0]))
    big = mean_absolute_percentage_error(np.array([2880.0]), np.array([1440.0]))
    assert small == big == 50.0


def test_mape_and_median():
    t = np.array([10.0, 10.0, 10.0])
    p = np.array([10.0, 20.0, 5.0])
    np.testing.assert_allclose(mean_absolute_percentage_error(t, p), 50.0)
    np.testing.assert_allclose(median_absolute_percentage_error(t, p), 50.0)


def test_within_percent_error():
    t = np.array([10.0, 10.0, 10.0, 10.0])
    p = np.array([10.0, 19.0, 21.0, 100.0])
    np.testing.assert_allclose(within_percent_error(t, p, 100.0), 0.5)
    with pytest.raises(ValueError):
        within_percent_error(t, p, 0.0)


def test_pearson_known_values():
    x = np.arange(10.0)
    np.testing.assert_allclose(pearson_r(x, 3 * x + 1), 1.0)
    np.testing.assert_allclose(pearson_r(x, -x), -1.0)
    assert pearson_r(x, np.ones(10)) == 0.0  # degenerate


@given(
    st.lists(st.floats(0.1, 1e4, allow_nan=False), min_size=2, max_size=50),
    st.floats(1.01, 3.0),
)
@settings(max_examples=30, deadline=None)
def test_scale_invariance_of_mape(values, factor):
    """MAPE is invariant to rescaling both arrays — the property the paper
    chose it for."""
    t = np.array(values)
    p = t * factor
    a = mean_absolute_percentage_error(t, p)
    b = mean_absolute_percentage_error(10 * t, 10 * p)
    np.testing.assert_allclose(a, b, rtol=1e-9)


def test_binary_accuracy_and_confusion():
    t = np.array([0, 0, 1, 1, 1.0])
    p = np.array([0, 1, 1, 0, 1.0])
    np.testing.assert_allclose(binary_accuracy(t, p), 3 / 5)
    c = confusion_binary(t, p)
    assert c == {"tn": 1, "fp": 1, "fn": 1, "tp": 2}


def test_length_mismatch():
    with pytest.raises(ValueError):
        mean_absolute_percentage_error(np.zeros(3), np.zeros(4))


def test_binned_ape_partitions_samples():
    from repro.eval.metrics import binned_ape

    t = np.array([5.0, 20.0, 45.0, 100.0, 2000.0])
    p = t * 1.5  # uniform 50% error
    bins = binned_ape(t, p)
    assert sum(b["n"] for b in bins) == len(t)
    for b in bins:
        np.testing.assert_allclose(b["mape"], 50.0)
        np.testing.assert_allclose(b["median_ape"], 50.0)
    # Bin bounds cover their samples.
    for b in bins:
        assert b["lo"] < b["hi"]


def test_binned_ape_custom_edges_skip_empty():
    from repro.eval.metrics import binned_ape

    t = np.array([1.0, 2.0])
    p = np.array([2.0, 4.0])
    bins = binned_ape(t, p, edges=np.array([10.0, 100.0, np.inf]))
    assert len(bins) == 1  # only the first bin is populated
    assert bins[0]["n"] == 2
