"""Comparison harness internals: log-space wrapper and tuned-NN factory."""

import numpy as np
import pytest

from repro.core import TroutConfig, TuningConfig
from repro.eval.comparison import _LogSpaceModel, _TunedNN, default_model_zoo
from repro.ml import KNeighborsRegressor


def test_logspace_wrapper_roundtrips_minutes():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    minutes = np.exp(2.0 + X[:, 0])
    m = _LogSpaceModel(KNeighborsRegressor(n_neighbors=1)).fit(X, minutes)
    np.testing.assert_allclose(m.predict_minutes(X), minutes, rtol=1e-9)


def test_logspace_wrapper_caps_blowups():
    class Explodes:
        def fit(self, X, y):
            return self

        def predict(self, X):
            return np.full(len(X), 1e6)  # absurd log-space output

    m = _LogSpaceModel(Explodes()).fit(np.zeros((2, 1)), np.ones(2))
    out = m.predict_minutes(np.zeros((3, 1)))
    assert np.all(np.isfinite(out))


def test_default_zoo_members():
    zoo = default_model_zoo(4, TroutConfig(seed=0))
    assert set(zoo) == {"neural_net", "xgboost", "random_forest", "knn"}
    # Factories take the fold number and build fresh models.
    a = zoo["random_forest"](1)
    b = zoo["random_forest"](1)
    assert a is not b


def test_tuned_nn_factory_and_fit():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(600, 4))
    minutes = np.exp(1.0 + X[:, 0])
    tuning = TuningConfig(n_trials=2, n_seeds=1, epochs=8, patience=3, seed=0)
    zoo = default_model_zoo(4, TroutConfig(seed=0), tuning=tuning)
    nn = zoo["neural_net"](1)
    assert isinstance(nn, _TunedNN)
    nn.fit(X, minutes)
    pred = nn.predict_minutes(X[:20])
    assert pred.shape == (20,) and np.all(pred >= 0)
