"""Report formatting utilities."""

import numpy as np
import pytest

from repro.eval.report import (
    density_series,
    format_table,
    format_timing_report,
    scatter_series,
)


def test_format_table_alignment():
    text = format_table(["model", "mape"], [["nn", 97.567], ["xgb", 150.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "97.57" in lines[2]
    assert lines[0].startswith("model")


def test_format_table_empty_rows():
    text = format_table(["a"], [])
    assert "a" in text


def test_format_timing_report_empty_mapping():
    text = format_timing_report({})
    assert "stage" in text  # header renders, no rows, no crash


def test_format_timing_report_zero_total():
    text = format_timing_report({"a": 0.0, "total": 0.0})
    # Zero total must not divide by zero; shares render as 0.
    assert "0.00" in text


def test_format_timing_report_missing_total_sums_stages():
    text = format_timing_report({"a": 0.25, "b": 0.75})
    lines = text.splitlines()
    row_a = next(line for line in lines if line.lstrip().startswith("a"))
    # Without an explicit "total" key the denominator is the stage sum,
    # so a's share is 25%.
    assert "25.00" in row_a


def test_format_timing_report_cache_stats_line():
    class Stats:
        hits, misses, stores, invalid = 3, 1, 1, 0

    text = format_timing_report({"total": 1.0}, Stats())
    assert "3 hits" in text and "1 misses" in text


def test_density_series_normalised():
    rng = np.random.default_rng(0)
    q = rng.lognormal(1.0, 2.0, 5000)
    d = density_series(q, n_bins=40)
    widths = np.diff(d["edges"])
    np.testing.assert_allclose((d["density"] * widths).sum(), 1.0, rtol=1e-6)
    assert len(d["bin_centers"]) == 40


def test_density_series_log_bins_grow():
    d = density_series(np.array([0.1, 1.0, 100.0, 10000.0]), n_bins=10)
    widths = np.diff(d["edges"])
    assert widths[-1] > widths[0]
    with pytest.raises(ValueError):
        density_series(np.ones(5), n_bins=1)


def test_density_clip_min_sets_first_edge():
    d = density_series(np.array([0.0, 5.0, 50.0]), n_bins=5, clip_min=1.0)
    np.testing.assert_allclose(d["edges"][0], 1.0)


def test_density_linear_mode():
    d = density_series(np.linspace(0, 10, 100), n_bins=10, log_scale=False)
    widths = np.diff(d["edges"])
    np.testing.assert_allclose(widths, widths[0])


def test_ascii_scatter_shape_and_content():
    from repro.eval.report import ascii_scatter

    rng = np.random.default_rng(0)
    x = np.exp(rng.normal(3, 1, 300))
    y = x * np.exp(rng.normal(0, 0.3, 300))
    plot = ascii_scatter(x, y, width=40, height=10)
    lines = plot.splitlines()
    assert len(lines) == 12  # 10 rows + axis + footer
    assert all(line.startswith("|") for line in lines[:10])
    assert lines[10].startswith("+")
    # Some density marks present.
    assert any(g in plot for g in ".:*#")


def test_ascii_scatter_validation():
    from repro.eval.report import ascii_scatter

    with pytest.raises(ValueError):
        ascii_scatter(np.zeros(0), np.zeros(0))
    with pytest.raises(ValueError):
        ascii_scatter(np.ones(3), np.ones(2))
    with pytest.raises(ValueError):
        ascii_scatter(np.ones(3), np.ones(3), width=2)


def test_ascii_scatter_constant_inputs():
    from repro.eval.report import ascii_scatter

    plot = ascii_scatter(np.full(5, 7.0), np.full(5, 7.0), log_scale=False)
    assert "#" in plot or "." in plot  # all mass in one cell, no crash


def test_scatter_series_subsamples():
    t = np.arange(10_000.0)
    p = t * 2
    s = scatter_series(t, p, max_points=500, seed=0)
    assert len(s["actual"]) == 500
    np.testing.assert_allclose(s["predicted"], s["actual"] * 2)
    # Small inputs pass through untouched.
    s2 = scatter_series(t[:10], p[:10])
    assert len(s2["actual"]) == 10
