"""Every example script must at least parse and compile.

The heavy examples are exercised manually / by documentation; this guard
keeps them from rotting silently when the API moves.
"""

import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 8
