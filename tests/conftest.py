"""Shared fixtures.

The expensive artefacts — a simulated trace and its feature matrix — are
session-scoped so the whole suite pays for simulation once.  The trace is
deliberately small but congested (``load=0.5``) so it contains enough
long-wait jobs for the model tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.training import build_feature_matrix
from repro.workload import WorkloadConfig, generate_trace


@pytest.fixture(scope="session")
def small_trace():
    """(SimulationResult, Cluster) for a 6k-job congested mini-Anvil."""
    cfg = WorkloadConfig(n_jobs=15_000, seed=11, load=0.5, cluster_scale=0.05)
    return generate_trace(cfg)


@pytest.fixture(scope="session")
def trace_jobs(small_trace):
    """The JobSet of the session trace."""
    return small_trace[0].jobs


@pytest.fixture(scope="session")
def cluster(small_trace):
    return small_trace[1]


@pytest.fixture(scope="session")
def feature_matrix(small_trace):
    """(FeatureMatrix, RuntimePredictor) over the session trace."""
    result, cluster = small_trace
    return build_feature_matrix(result.jobs, cluster)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
