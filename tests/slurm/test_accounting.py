"""sacct-style rendering."""

from repro.slurm.accounting import format_sacct, sacct_lines


def test_header_and_limit(trace_jobs):
    text = format_sacct(trace_jobs, limit=5)
    lines = text.splitlines()
    assert lines[0].startswith("JobID|User|Partition|State")
    assert len(lines) == 6


def test_fields_parse(trace_jobs):
    lines = list(sacct_lines(trace_jobs, limit=3))
    for line in lines[1:]:
        fields = line.split("|")
        assert len(fields) == 13
        assert fields[2] in trace_jobs.partition_names
        assert fields[3] in {"COMPLETED", "FAILED", "TIMEOUT", "CANCELLED"}


def test_duration_format(trace_jobs):
    from repro.slurm.accounting import _fmt_minutes

    assert _fmt_minutes(90.0) == "01:30:00"
    assert _fmt_minutes(24 * 60.0) == "1-00:00:00"
    assert _fmt_minutes(0.5) == "00:00:30"
