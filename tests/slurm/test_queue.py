"""Unit tests for the fast engine's data structures.

:class:`EventQueue` (indexed lazy-deletion heap) and :class:`JobPool`
(swap-remove membership set) carry the fast engine's determinism
contract, so their edge cases — tombstoning, supersession, drain
ordering, version bumps — are pinned here independently of any
simulation scenario.
"""

import numpy as np
import pytest

from repro.slurm.queue import EventQueue, JobPool


class TestEventQueue:
    def test_pops_in_time_kind_seq_order(self):
        q = EventQueue()
        q.push(5.0, 1, 10)
        q.push(3.0, 1, 11)
        q.push(3.0, 0, 12)  # same time, lower kind drains first
        q.push(3.0, 1, 13)  # same (time, kind): push order breaks the tie
        assert q.pop() == (3.0, 0, 12)
        assert q.pop() == (3.0, 1, 11)
        assert q.pop() == (3.0, 1, 13)
        assert q.pop() == (5.0, 1, 10)
        assert q.empty()

    def test_push_supersedes_live_event_for_same_key(self):
        q = EventQueue()
        q.push(5.0, 1, 7)
        q.push(9.0, 1, 7)  # reschedule: the 5.0 entry is tombstoned
        assert len(q) == 1
        assert q.tombstoned == 1
        assert q.pop() == (9.0, 1, 7)
        assert q.empty()

    def test_same_job_different_kinds_are_distinct_keys(self):
        q = EventQueue()
        q.push(1.0, 0, 7)
        q.push(2.0, 1, 7)
        assert len(q) == 2
        assert q.pop() == (1.0, 0, 7)
        assert q.pop() == (2.0, 1, 7)

    def test_invalidate_tombstones_and_reports(self):
        q = EventQueue()
        q.push(5.0, 1, 7)
        assert q.invalidate(1, 7) is True
        assert q.invalidate(1, 7) is False  # already gone
        assert q.tombstoned == 1
        assert len(q) == 0
        assert q.empty()

    def test_readd_after_invalidate(self):
        q = EventQueue()
        q.push(5.0, 1, 7)
        q.invalidate(1, 7)
        q.push(8.0, 1, 7)
        assert q.pop() == (8.0, 1, 7)

    def test_peek_does_not_pop(self):
        q = EventQueue()
        q.push(4.0, 0, 1)
        assert q.peek_time() == 4.0
        assert q.peek_time() == 4.0
        assert len(q) == 1

    def test_empty_queue_errors(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek_time()
        assert q.empty()

    def test_drain_returns_batch_within_cutoff_in_order(self):
        q = EventQueue()
        q.push(1.0, 1, 1)
        q.push(1.0, 0, 2)
        q.push(1.0 + 5e-10, 1, 3)  # inside the 1e-9 batching window
        q.push(2.0, 0, 4)
        batch = q.drain(1.0 + 1e-9)
        assert batch == [(1.0, 0, 2), (1.0, 1, 1), (1.0 + 5e-10, 1, 3)]
        assert len(q) == 1
        assert q.pop() == (2.0, 0, 4)

    def test_drain_skips_tombstones(self):
        q = EventQueue()
        q.push(1.0, 1, 1)
        q.push(1.0, 1, 2)
        q.invalidate(1, 1)
        assert q.drain(1.0) == [(1.0, 1, 2)]

    def test_drain_next_fuses_peek_and_drain(self):
        q = EventQueue()
        q.push(3.0, 1, 1)
        q.push(3.0 + 5e-10, 0, 2)
        q.push(4.0, 0, 3)
        t, events = q.drain_next(1e-9)
        assert t == 3.0
        assert events == [(3.0, 1, 1), (3.0 + 5e-10, 0, 2)]
        assert q.drain_next(1e-9) == (4.0, [(4.0, 0, 3)])
        assert q.drain_next(1e-9) is None

    def test_drain_next_all_tombstoned_is_none(self):
        q = EventQueue()
        q.push(3.0, 1, 1)
        q.invalidate(1, 1)
        assert q.drain_next(1e-9) is None

    def test_interleaved_pushes_preserve_heap_order(self):
        q = EventQueue()
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 100, size=200)
        for j, t in enumerate(times):
            q.push(float(t), 1, j)
        # Invalidate every third job, reschedule every seventh.
        for j in range(0, 200, 3):
            q.invalidate(1, j)
        for j in range(0, 200, 7):
            q.push(float(times[j] + 1000.0), 1, j)
        popped = []
        while not q.empty():
            popped.append(q.pop())
        assert popped == sorted(popped)
        alive = {j for _, _, j in popped}
        expect = (set(range(200)) - set(range(0, 200, 3))) | set(range(0, 200, 7))
        assert alive == expect


class TestJobPool:
    def test_add_remove_contains_len(self):
        pool = JobPool(10)
        pool.add(3)
        pool.add(7)
        assert len(pool) == 2
        assert 3 in pool and 7 in pool and 5 not in pool
        pool.remove(3)
        assert len(pool) == 1
        assert 3 not in pool and 7 in pool

    def test_view_holds_current_members(self):
        pool = JobPool(10)
        for j in (2, 5, 8):
            pool.add(j)
        assert set(pool.view().tolist()) == {2, 5, 8}
        pool.remove(5)
        assert set(pool.view().tolist()) == {2, 8}

    def test_swap_remove_moves_last_member(self):
        pool = JobPool(10)
        for j in (1, 2, 3):
            pool.add(j)
        pool.remove(1)  # 3 swaps into slot 0
        assert pool.view().tolist() == [3, 2]

    def test_version_bumps_on_every_mutation(self):
        pool = JobPool(4)
        v0 = pool.version
        pool.add(0)
        pool.add(1)
        assert pool.version == v0 + 2
        pool.remove(0)
        assert pool.version == v0 + 3

    def test_double_add_and_missing_remove_raise(self):
        pool = JobPool(4)
        pool.add(2)
        with pytest.raises(ValueError):
            pool.add(2)
        with pytest.raises(KeyError):
            pool.remove(3)

    def test_zero_capacity_pool_is_valid(self):
        pool = JobPool(0)
        assert len(pool) == 0
        assert pool.view().tolist() == []
