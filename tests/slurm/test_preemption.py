"""QOS-based requeue preemption."""

import numpy as np
import pytest

from repro.slurm.simulator import PreemptionPolicy, Simulator
from tests.slurm.test_simulator import make_subs, tiny_cluster


def run(rows, preemption=None, cpus=100):
    sim = Simulator(tiny_cluster(cpus=cpus), n_users=4, preemption=preemption)
    return sim.run(make_subs(rows))


def _saturating_scenario():
    """Low-QOS job hogs the machine; a high-QOS job arrives later."""
    return [
        dict(job_id=1, submit_time=0.0, req_cpus=100, qos=0,
             timelimit_min=600.0, runtime_min=600.0),
        dict(job_id=2, submit_time=60.0, req_cpus=100, qos=2,
             timelimit_min=30.0, runtime_min=30.0),
    ]


def test_preemption_disabled_by_default():
    res = run(_saturating_scenario())
    rec = res.jobs.sort_by("job_id").records
    # Without preemption the high-QOS job waits for the hog to finish.
    assert rec["start_time"][1] == 600 * 60.0
    assert res.n_preemptions == 0


def test_high_qos_preempts_low_qos():
    res = run(_saturating_scenario(), PreemptionPolicy(min_preemptor_qos=2))
    rec = res.jobs.sort_by("job_id").records
    # The preemptor starts immediately at its eligibility.
    assert rec["start_time"][1] == 60.0
    assert res.n_preemptions == 1
    # The victim restarts from scratch after the preemptor finishes and
    # still completes its full runtime.
    assert rec["start_time"][0] >= rec["end_time"][1]
    np.testing.assert_allclose(
        rec["end_time"][0] - rec["start_time"][0], 600 * 60.0
    )


def test_equal_qos_cannot_preempt():
    rows = _saturating_scenario()
    rows[0]["qos"] = 2  # same as the would-be preemptor
    res = run(rows, PreemptionPolicy(min_preemptor_qos=2))
    rec = res.jobs.sort_by("job_id").records
    assert res.n_preemptions == 0
    assert rec["start_time"][1] == 600 * 60.0


def test_below_threshold_qos_cannot_preempt():
    rows = _saturating_scenario()
    rows[1]["qos"] = 1  # normal QOS: no preempt rights
    res = run(rows, PreemptionPolicy(min_preemptor_qos=2))
    assert res.n_preemptions == 0


def test_victim_selection_most_recent_first():
    # Two low-QOS jobs running; preemptor needs only half the machine, so
    # only the most recently started victim should be evicted.
    rows = [
        dict(job_id=1, submit_time=0.0, req_cpus=50, qos=0,
             timelimit_min=600.0, runtime_min=600.0),
        dict(job_id=2, submit_time=10.0, req_cpus=50, qos=0,
             timelimit_min=600.0, runtime_min=600.0),
        dict(job_id=3, submit_time=60.0, req_cpus=50, qos=2,
             timelimit_min=30.0, runtime_min=30.0),
    ]
    res = run(rows, PreemptionPolicy(min_preemptor_qos=2))
    rec = res.jobs.sort_by("job_id").records
    assert res.n_preemptions == 1
    assert rec["start_time"][2] == 60.0  # preemptor in immediately
    assert rec["start_time"][0] == 0.0  # earlier job untouched
    assert rec["start_time"][1] > 60.0  # later job was the victim


def test_preempted_work_charged_to_fairshare():
    sim = Simulator(
        tiny_cluster(), n_users=4, preemption=PreemptionPolicy(min_preemptor_qos=2)
    )
    res = sim.run(make_subs(_saturating_scenario()))
    assert res.n_preemptions == 1
    # User 0 ran 0..60 s before eviction plus the full rerun; usage must
    # exceed the rerun alone.
    usage = sim.fairshare.usage()
    assert usage[0] > 0


def test_trace_invariants_hold_under_preemption():
    rng = np.random.default_rng(0)
    rows = []
    for i in range(60):
        rows.append(
            dict(
                job_id=i + 1,
                user_id=int(rng.integers(0, 4)),
                submit_time=float(i * 120),
                req_cpus=int(rng.choice([25, 50, 100])),
                qos=int(rng.choice([0, 1, 2], p=[0.3, 0.5, 0.2])),
                timelimit_min=float(rng.choice([30, 120, 600])),
                runtime_min=float(rng.uniform(5, 300)),
            )
        )
    res = run(rows, PreemptionPolicy(min_preemptor_qos=2))
    res.jobs.validate()
    assert np.all(res.queue_time_min >= 0)
    # Capacity never exceeded despite requeues.
    rec = res.jobs.records
    ts = np.concatenate([rec["start_time"], rec["end_time"]])
    deltas = np.concatenate(
        [rec["req_cpus"].astype(float), -rec["req_cpus"].astype(float)]
    )
    order = np.lexsort((deltas, ts))
    assert np.cumsum(deltas[order]).max() <= 100 + 1e-6


def test_policy_validation():
    with pytest.raises(ValueError):
        PreemptionPolicy(min_preemptor_qos=0)
    with pytest.raises(ValueError):
        PreemptionPolicy(max_victims_per_pass=0)
