"""Hypothesis properties of the node ledger: conservation and bounds."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slurm.nodes import NodeLedger
from repro.slurm.resources import NodePool


@given(
    ops=st.lists(
        st.tuples(
            st.integers(1, 16),  # cpus
            st.floats(0.5, 32.0),  # mem
            st.integers(1, 2),  # nodes
            st.booleans(),  # exclusive
        ),
        min_size=1,
        max_size=30,
    ),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_place_release_conserves_resources(ops, seed):
    pool = NodePool("p", n_nodes=4, cpus_per_node=16, mem_gb_per_node=32.0)
    led = NodeLedger(pool)
    rng = np.random.default_rng(seed)
    live = []
    for cpus, mem, nodes, exclusive in ops:
        # Randomly release something first to mix the sequence.
        if live and rng.random() < 0.4:
            led.release(live.pop(rng.integers(0, len(live))))
        if led.can_place(cpus, mem, 0, nodes, exclusive):
            live.append(led.place(cpus, mem, 0, nodes, exclusive))
        # Invariants hold at every step.
        assert led.free_cpus.min() >= -1e-9
        assert led.free_mem.min() >= -1e-9
        assert led.free_cpus.max() <= 16 + 1e-9
        assert led.free_mem.max() <= 32 + 1e-9
    for alloc in live:
        led.release(alloc)
    np.testing.assert_allclose(led.free_cpus, 16.0)
    np.testing.assert_allclose(led.free_mem, 32.0)


@given(
    cpus=st.integers(1, 64),
    nodes=st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_split_allocations_sum_exactly(cpus, nodes):
    pool = NodePool("p", n_nodes=4, cpus_per_node=16, mem_gb_per_node=64.0)
    led = NodeLedger(pool)
    if not led.can_place(cpus, 8.0, 0, nodes, exclusive=False):
        return
    alloc = led.place(cpus, 8.0, 0, nodes, exclusive=False)
    assert len(np.unique(alloc.node_ids)) == max(nodes, 1)
    np.testing.assert_allclose(alloc.cpus.sum(), cpus)
    np.testing.assert_allclose(alloc.mem.sum(), 8.0)
    # Integral CPU shares.
    np.testing.assert_allclose(alloc.cpus, np.round(alloc.cpus))
