"""Event-driven simulator: deterministic scheduling scenarios + global
invariants on the session trace."""

import numpy as np
import pytest

from repro.data.schema import JobState
from repro.slurm.priority import PriorityWeights
from repro.slurm.resources import Cluster, NodePool, Partition
from repro.slurm.simulator import SUBMISSION_DTYPE, Simulator


def tiny_cluster(cpus=100, mem=1000.0):
    pool = NodePool("p", n_nodes=1, cpus_per_node=cpus, mem_gb_per_node=mem)
    return Cluster("tiny", [pool], [Partition("q", pool="p")])


def make_subs(rows):
    """rows: list of dicts with job fields; returns a SUBMISSION_DTYPE array."""
    out = np.zeros(len(rows), dtype=SUBMISSION_DTYPE)
    out["req_nodes"] = 1
    out["req_mem_gb"] = 1.0
    out["qos"] = 1
    for i, row in enumerate(rows):
        out["job_id"][i] = row.get("job_id", i + 1)
        for k, v in row.items():
            out[k][i] = v
        out["eligible_time"][i] = row.get("eligible_time", row.get("submit_time", 0.0))
    return out


def run(cluster, rows, n_users=4, **kw):
    sim = Simulator(cluster, n_users=n_users, **kw)
    return sim.run(make_subs(rows))


def test_single_job_starts_immediately():
    res = run(
        tiny_cluster(),
        [dict(submit_time=5.0, req_cpus=10, timelimit_min=60.0, runtime_min=30.0)],
    )
    rec = res.jobs.records
    assert rec["start_time"][0] == 5.0
    assert rec["end_time"][0] == 5.0 + 30 * 60
    assert res.queue_time_min[0] == 0.0


def test_fifo_under_saturation_uses_actual_runtime():
    # Both jobs need the whole pool; the second starts when the first
    # actually ends (10 min), not at its 60-min limit.
    res = run(
        tiny_cluster(),
        [
            dict(submit_time=0.0, req_cpus=100, timelimit_min=60.0, runtime_min=10.0),
            dict(submit_time=1.0, req_cpus=100, timelimit_min=60.0, runtime_min=10.0),
        ],
    )
    rec = res.jobs.records
    second = np.argmax(rec["job_id"] == 2)
    assert rec["start_time"][second] == 10 * 60.0


def test_backfill_small_short_job_jumps_blocked_head():
    # A (60 cpus) runs 0..100min.  B (80 cpus) blocks at t=1 with shadow at
    # A's expected end.  C (20 cpus, 50 min limit) finishes before the
    # shadow and backfills immediately; B still starts at A's actual end.
    res = run(
        tiny_cluster(),
        [
            dict(job_id=1, submit_time=0.0, req_cpus=60, timelimit_min=100.0, runtime_min=100.0),
            dict(job_id=2, submit_time=60.0, req_cpus=80, timelimit_min=30.0, runtime_min=30.0),
            dict(job_id=3, submit_time=61.0, req_cpus=20, timelimit_min=50.0, runtime_min=50.0),
        ],
    )
    rec = res.jobs.records
    t = {int(j): float(s) for j, s in zip(rec["job_id"], rec["start_time"])}
    assert t[3] == 61.0  # backfilled right away
    assert t[2] == 100 * 60.0  # blocked head waits for A


def test_backfill_respects_reservation():
    # Same as above but C's limit (200 min) overruns the shadow and C's 50
    # cpus exceed the 40-cpu extra, so C must NOT start before B.
    res = run(
        tiny_cluster(),
        [
            dict(job_id=1, submit_time=0.0, req_cpus=60, timelimit_min=100.0, runtime_min=100.0),
            dict(job_id=2, submit_time=60.0, req_cpus=60, timelimit_min=30.0, runtime_min=30.0),
            dict(job_id=3, submit_time=61.0, req_cpus=41, timelimit_min=200.0, runtime_min=200.0),
        ],
    )
    rec = res.jobs.records
    t = {int(j): float(s) for j, s in zip(rec["job_id"], rec["start_time"])}
    assert t[3] >= t[2]


def test_eligibility_delay_honoured():
    res = run(
        tiny_cluster(),
        [
            dict(
                submit_time=0.0,
                eligible_time=600.0,
                req_cpus=1,
                timelimit_min=10.0,
                runtime_min=5.0,
            )
        ],
    )
    assert res.jobs.records["start_time"][0] == 600.0
    assert res.queue_time_min[0] == 0.0  # measured from eligibility


def test_timeout_state_and_clipping():
    res = run(
        tiny_cluster(),
        [dict(submit_time=0.0, req_cpus=1, timelimit_min=10.0, runtime_min=99.0)],
    )
    rec = res.jobs.records
    assert rec["state"][0] == int(JobState.TIMEOUT)
    assert rec["end_time"][0] - rec["start_time"][0] == 10 * 60.0


def test_failed_state_propagates():
    res = run(
        tiny_cluster(),
        [dict(submit_time=0.0, req_cpus=1, timelimit_min=10.0, runtime_min=1.0, fail=1)],
    )
    assert res.jobs.records["state"][0] == int(JobState.FAILED)


def test_unsatisfiable_request_rejected():
    with pytest.raises(ValueError, match="unsatisfiable"):
        run(
            tiny_cluster(cpus=10),
            [dict(submit_time=0.0, req_cpus=11, timelimit_min=10.0, runtime_min=1.0)],
        )


def test_wrong_dtype_rejected():
    sim = Simulator(tiny_cluster(), n_users=1)
    with pytest.raises(TypeError):
        sim.run(np.zeros(3))


def test_priority_orders_equal_time_jobs():
    # Two jobs eligible at the same instant competing for the last slot:
    # the high-QOS one wins.
    res = run(
        tiny_cluster(cpus=10),
        [
            dict(job_id=1, submit_time=0.0, req_cpus=10, timelimit_min=10.0, runtime_min=10.0),
            dict(job_id=2, submit_time=5.0, req_cpus=10, qos=0, timelimit_min=10.0, runtime_min=1.0),
            dict(job_id=3, submit_time=5.0, req_cpus=10, qos=2, timelimit_min=10.0, runtime_min=1.0),
        ],
    )
    rec = res.jobs.records
    t = {int(j): float(s) for j, s in zip(rec["job_id"], rec["start_time"])}
    assert t[3] < t[2]


def _capacity_profile(jobs, cluster):
    """Max simultaneous CPU usage per pool from the accounting records."""
    pool_ids = cluster.partition_pool_ids()
    rec = jobs.records
    for pool_idx, pool in enumerate(cluster.pools):
        mask = pool_ids[rec["partition"].astype(np.intp)] == pool_idx
        if not mask.any():
            continue
        starts = rec["start_time"][mask]
        ends = rec["end_time"][mask]
        cpus = rec["req_cpus"][mask].astype(np.float64)
        ts = np.concatenate([starts, ends])
        deltas = np.concatenate([cpus, -cpus])
        order = np.lexsort((deltas, ts))  # releases before grabs at ties
        usage = np.cumsum(deltas[order])
        yield pool.name, float(usage.max()), pool.total_cpus


def test_capacity_never_exceeded_on_session_trace(small_trace):
    result, cluster = small_trace
    for name, peak, cap in _capacity_profile(result.jobs, cluster):
        assert peak <= cap + 1e-6, f"pool {name} oversubscribed: {peak} > {cap}"


def test_session_trace_invariants(small_trace):
    result, _ = small_trace
    jobs = result.jobs
    jobs.validate()
    assert np.all(result.queue_time_min >= 0)
    assert np.all(result.priorities_at_eligibility > 0)
    # Trace is eligibility-ordered.
    elig = jobs.column("eligible_time")
    assert np.all(np.diff(elig) >= 0)
