"""PoolLedger and BackfillScheduler unit behaviour."""

import numpy as np
import pytest

from repro.slurm.scheduler import PoolLedger


def test_ledger_fits_and_allocates():
    led = PoolLedger(100.0, 200.0, 4.0)
    assert led.fits(100, 200, 4)
    assert not led.fits(101, 1, 0)
    led.allocate(60, 100, 2)
    assert led.free_cpus == 40.0
    led.release(60, 100, 2)
    assert led.free_cpus == 100.0


def test_ledger_overallocation_detected():
    led = PoolLedger(10.0, 10.0, 0.0)
    with pytest.raises(RuntimeError, match="over-allocated"):
        led.allocate(20, 1, 0)


def test_ledger_float_tolerance():
    led = PoolLedger(1.0, 1.0, 0.0)
    # Requests equal to capacity within epsilon must fit.
    assert led.fits(1.0 + 1e-12, 1.0, 0.0)
