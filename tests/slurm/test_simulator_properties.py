"""Hypothesis property tests for the scheduler/simulator.

Random small scenarios (with and without preemption) must always satisfy
the physical invariants: capacity is never exceeded, no job starts before
its eligibility, every job runs exactly its effective runtime, and the
trace validates.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import JobState
from repro.slurm.simulator import PreemptionPolicy, Simulator
from tests.slurm.test_simulator import make_subs, tiny_cluster

job_strategy = st.fixed_dictionaries(
    {
        "user_id": st.integers(0, 3),
        "submit_time": st.floats(0, 5000),
        "req_cpus": st.sampled_from([1, 10, 25, 50, 100]),
        "qos": st.integers(0, 2),
        "timelimit_min": st.sampled_from([5.0, 30.0, 120.0]),
        "runtime_min": st.floats(0.1, 120.0),
    }
)


def _run_scenario(rows, preemption):
    for i, r in enumerate(rows):
        r["job_id"] = i + 1
    sim = Simulator(tiny_cluster(cpus=100), n_users=4, preemption=preemption)
    return sim.run(make_subs(rows)), rows


@given(rows=st.lists(job_strategy, min_size=1, max_size=25))
@settings(max_examples=30, deadline=None)
def test_invariants_without_preemption(rows):
    res, rows = _run_scenario([dict(r) for r in rows], preemption=None)
    _check_invariants(res, rows)


@given(rows=st.lists(job_strategy, min_size=1, max_size=25))
@settings(max_examples=30, deadline=None)
def test_invariants_with_preemption(rows):
    res, rows = _run_scenario(
        [dict(r) for r in rows], preemption=PreemptionPolicy(min_preemptor_qos=2)
    )
    _check_invariants(res, rows)


def _check_invariants(res, rows):
    jobs = res.jobs
    jobs.validate()
    rec = jobs.records
    # Started at or after eligibility.
    assert np.all(rec["start_time"] >= rec["eligible_time"] - 1e-6)
    # Each job's final interval is exactly min(runtime, timelimit).
    intended = {r["job_id"]: min(r["runtime_min"], r["timelimit_min"]) for r in rows}
    for jid, start, end in zip(rec["job_id"], rec["start_time"], rec["end_time"]):
        np.testing.assert_allclose(
            (end - start) / 60.0, intended[int(jid)], atol=1e-6
        )
    # Capacity respected at every instant.
    ts = np.concatenate([rec["start_time"], rec["end_time"]])
    deltas = np.concatenate(
        [rec["req_cpus"].astype(float), -rec["req_cpus"].astype(float)]
    )
    order = np.lexsort((deltas, ts))
    assert np.cumsum(deltas[order]).max() <= 100 + 1e-6
    # TIMEOUT iff the job ran out its limit.
    ran_full = (rec["end_time"] - rec["start_time"]) >= rec["timelimit_min"] * 60 - 1e-6
    timeouts = rec["state"] == int(JobState.TIMEOUT)
    assert np.all(~timeouts | ran_full)
