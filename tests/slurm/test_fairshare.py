"""Fair-share decay and factor semantics."""

import numpy as np
import pytest

from repro.slurm.fairshare import FairShareTracker


def test_fresh_tracker_gives_everyone_factor_one():
    t = FairShareTracker(4)
    np.testing.assert_allclose(t.factors(np.arange(4), 0.0), 1.0)


def test_heavy_user_sinks():
    t = FairShareTracker(3)
    t.add_usage(0, 1e6, t=0.0)
    f = t.factors(np.arange(3), 0.0)
    assert f[0] < f[1] == f[2]
    assert 0 < f[0] < 1


def test_usage_decays_with_half_life():
    t = FairShareTracker(2, half_life_s=100.0)
    t.add_usage(0, 1000.0, t=0.0)
    u = t.usage(t=100.0)
    np.testing.assert_allclose(u[0], 500.0)
    u = t.usage(t=300.0)
    np.testing.assert_allclose(u[0], 125.0)


def test_factor_recovers_after_decay():
    t = FairShareTracker(2, half_life_s=10.0)
    t.add_usage(0, 1e6, t=0.0)
    early = t.factors(np.array([0]), 0.0)[0]
    # Relative share stays 100% of a shrinking total, so pit user 1's tiny
    # later usage against it: after many half-lives user 0's absolute usage
    # is negligible vs user 1's fresh usage.
    t.add_usage(1, 1e6, t=200.0)
    late = t.factors(np.array([0]), 200.0)[0]
    assert late > early


def test_time_cannot_go_backwards():
    t = FairShareTracker(1)
    t.add_usage(0, 1.0, t=100.0)
    with pytest.raises(ValueError, match="backwards"):
        t.add_usage(0, 1.0, t=50.0)


def test_shares_weighting():
    shares = np.array([3.0, 1.0])
    t = FairShareTracker(2, shares=shares)
    t.add_usage(0, 500.0, t=0.0)
    t.add_usage(1, 500.0, t=0.0)
    f = t.factors(np.array([0, 1]), 0.0)
    # Equal usage but user 0 owns 3x the shares -> better factor.
    assert f[0] > f[1]


def test_invalid_construction():
    with pytest.raises(ValueError):
        FairShareTracker(0)
    with pytest.raises(ValueError):
        FairShareTracker(2, half_life_s=0)
    with pytest.raises(ValueError):
        FairShareTracker(2, shares=np.array([1.0, -1.0]))
    t = FairShareTracker(1)
    with pytest.raises(ValueError):
        t.add_usage(0, -5.0, t=0.0)
