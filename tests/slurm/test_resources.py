"""Cluster/pool/partition model."""

import numpy as np
import pytest

from repro.slurm.anvil import ANVIL_PARTITIONS, anvil_cluster
from repro.slurm.resources import Cluster, NodePool, Partition


def test_pool_totals():
    p = NodePool("cpu", n_nodes=10, cpus_per_node=128, mem_gb_per_node=256.0, gpus_per_node=2)
    assert p.total_cpus == 1280
    assert p.total_mem_gb == 2560.0
    assert p.total_gpus == 20


def test_pool_validation():
    with pytest.raises(ValueError):
        NodePool("bad", 0, 128, 256.0)
    with pytest.raises(ValueError):
        NodePool("bad", 2, 128, -1.0)


def test_anvil_shape():
    c = anvil_cluster(scale=1.0)
    assert c.partition_names == ANVIL_PARTITIONS
    assert len(c.pools) == 3
    shared = c.partition("shared")
    gpu = c.partition("gpu")
    assert shared.pool == "cpu" and gpu.pool == "gpu"
    # debug partition jumps the queue via its tier
    assert c.partition("debug").priority_tier > shared.priority_tier


def test_anvil_scaling():
    small = anvil_cluster(scale=0.05)
    big = anvil_cluster(scale=1.0)
    assert small.pools[0].n_nodes < big.pools[0].n_nodes
    assert small.pools[0].cpus_per_node == big.pools[0].cpus_per_node
    with pytest.raises(ValueError):
        anvil_cluster(scale=0)


def test_partition_lookup_and_errors():
    c = anvil_cluster(0.05)
    assert c.partition_id("shared") == 0
    assert c.partition(0).name == "shared"
    with pytest.raises(KeyError):
        c.partition_id("nope")
    with pytest.raises(KeyError):
        c.pool_id("nope")


def test_partition_pool_ids_and_specs():
    c = anvil_cluster(0.05)
    pool_ids = c.partition_pool_ids()
    assert len(pool_ids) == len(c.partitions)
    specs = c.partition_specs()
    shared = c.partition_id("shared")
    gpu = c.partition_id("gpu")
    assert specs["total_gpus"][shared] == 0
    assert specs["total_gpus"][gpu] > 0
    assert specs["cpus_per_node"][shared] == 128


def test_duplicate_names_rejected():
    pool = NodePool("p", 2, 4, 8.0)
    with pytest.raises(ValueError):
        Cluster("c", [pool, pool], [])
    with pytest.raises(ValueError):
        Cluster("c", [pool], [Partition("a", "p"), Partition("a", "p")])
    with pytest.raises(ValueError):
        Cluster("c", [pool], [Partition("a", "nope")])


def test_validate_request():
    c = anvil_cluster(0.05)
    c.validate_request("shared", req_cpus=4, req_mem_gb=8.0, req_nodes=1)
    with pytest.raises(ValueError, match="exceeds pool"):
        c.validate_request("gpu", req_cpus=10**6, req_mem_gb=1.0, req_nodes=1)
    with pytest.raises(ValueError, match="caps jobs"):
        c.validate_request("shared", req_cpus=4, req_mem_gb=8.0, req_nodes=5)
    with pytest.raises(ValueError, match="timelimit"):
        c.validate_request(
            "debug", req_cpus=1, req_mem_gb=1.0, req_nodes=1, timelimit_min=10_000
        )
    with pytest.raises(ValueError, match="positive"):
        c.validate_request("shared", req_cpus=0, req_mem_gb=1.0, req_nodes=1)
