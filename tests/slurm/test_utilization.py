"""Utilisation diagnostics."""

import numpy as np
import pytest

from repro.slurm.utilization import pool_utilization, utilization_summary


def test_profile_never_exceeds_capacity(small_trace):
    result, cluster = small_trace
    for pool_id, pool in enumerate(cluster.pools):
        prof = pool_utilization(result.jobs, cluster, pool_id)
        if len(prof["busy_cpus"]):
            assert prof["busy_cpus"].max() <= pool.total_cpus + 1e-6
            assert prof["busy_cpus"].min() >= -1e-6
            assert np.all(np.diff(prof["times"]) >= 0)


def test_summary_matches_generator_load(small_trace):
    """The CPU pool's mean utilisation should be in the ballpark of the
    generator's load target (0.5 for the session trace)."""
    result, cluster = small_trace
    summary = utilization_summary(result.jobs, cluster)
    cpu = summary["cpu"]
    assert 0.2 < cpu["mean"] < 0.9
    assert cpu["mean"] <= cpu["peak"] <= 1.0 + 1e-9


def test_profile_simple_scenario():
    from repro.slurm.simulator import Simulator
    from tests.slurm.test_simulator import make_subs, tiny_cluster

    cluster = tiny_cluster(cpus=100)
    res = Simulator(cluster, n_users=2).run(
        make_subs(
            [
                dict(job_id=1, submit_time=0.0, req_cpus=40, timelimit_min=10.0, runtime_min=10.0),
                dict(job_id=2, submit_time=0.0, req_cpus=30, timelimit_min=5.0, runtime_min=5.0),
            ]
        )
    )
    prof = pool_utilization(res.jobs, cluster, 0)
    assert prof["busy_cpus"].max() == 70.0
    summary = utilization_summary(res.jobs, cluster)
    assert summary["p"]["peak"] == 0.7


def test_empty_pool():
    from tests.slurm.test_simulator import tiny_cluster
    from repro.data.schema import JobSet

    cluster = tiny_cluster()
    prof = pool_utilization(JobSet.empty(("q",)), cluster, 0)
    assert len(prof["times"]) == 0
    summary = utilization_summary(JobSet.empty(("q",)), cluster)
    assert summary["p"] == {"mean": 0.0, "peak": 0.0}
