"""Fast vs reference engine: bitwise trace equivalence.

The fast engine (lazy-deletion event queue, swap-remove pools,
vectorised backfill, cached priority) is an optimisation, not a
re-specification: for any submission table and any mode combination it
must reproduce the reference engine's trace *bit for bit* — start/end
times, priorities-at-eligibility, pass and preemption counts, makespan.
Hypothesis hammers that contract with random tables; fixed scenarios pin
the multi-pool and preemption corners, plus run-to-run determinism of a
two-pool trace (set-ordered pool iteration was once a silent
nondeterminism hazard).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slurm.resources import Cluster, NodePool, Partition
from repro.slurm.simulator import PreemptionPolicy, Simulator
from repro.workload.generator import WorkloadConfig, generate_trace
from tests.slurm.test_simulator import make_subs, tiny_cluster

job_strategy = st.fixed_dictionaries(
    {
        "user_id": st.integers(0, 3),
        "submit_time": st.floats(0, 5000),
        "partition": st.integers(0, 1),
        "req_cpus": st.sampled_from([1, 10, 25, 50, 100]),
        "qos": st.integers(0, 2),
        "timelimit_min": st.sampled_from([5.0, 30.0, 120.0]),
        "runtime_min": st.floats(0.1, 120.0),
    }
)


def two_pool_cluster():
    pools = [
        NodePool("a", n_nodes=2, cpus_per_node=100, mem_gb_per_node=512.0),
        NodePool("b", n_nodes=1, cpus_per_node=100, mem_gb_per_node=1024.0),
    ]
    parts = [Partition("qa", pool="a"), Partition("qb", pool="b")]
    return Cluster("twopool", pools, parts)


def _trace_fingerprint(res):
    return (
        res.jobs._records.tobytes(),
        res.priorities_at_eligibility.tobytes(),
        res.n_scheduler_passes,
        res.n_preemptions,
        res.makespan_s,
    )


def _run_engine(engine, rows, *, preemption=None, node_level=False):
    sim = Simulator(
        two_pool_cluster(),
        n_users=4,
        preemption=preemption,
        node_level=node_level,
        engine=engine,
    )
    return sim.run(make_subs([dict(r) for r in rows]))


@given(
    rows=st.lists(job_strategy, min_size=1, max_size=30),
    preempt=st.booleans(),
    node_level=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_engines_bitwise_identical(rows, preempt, node_level):
    for i, r in enumerate(rows):
        r["job_id"] = i + 1
    policy = PreemptionPolicy(min_preemptor_qos=2) if preempt else None
    ref = _run_engine("reference", rows, preemption=policy, node_level=node_level)
    fast = _run_engine("fast", rows, preemption=policy, node_level=node_level)
    assert _trace_fingerprint(fast) == _trace_fingerprint(ref)


def test_engines_match_on_generated_multi_pool_trace():
    # End-to-end through the workload generator: an Anvil-shaped cluster
    # (several pools live) at congesting load, both engines.
    cfg = WorkloadConfig(n_jobs=1500, seed=11, cluster_scale=0.05, load=0.45)
    ref, _ = generate_trace(cfg, engine="reference")
    fast, _ = generate_trace(cfg, engine="fast")
    assert _trace_fingerprint(fast) == _trace_fingerprint(ref)


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_two_pool_trace_is_run_to_run_deterministic(engine):
    # Pool iteration order must be sorted, not set order: with two pools
    # dirty in one event batch, an unsorted walk reorders fair-share
    # charges and diverges.  Two fresh runs must agree byte for byte.
    cfg = WorkloadConfig(n_jobs=800, seed=3, cluster_scale=0.05, load=0.5)
    a, _ = generate_trace(cfg, engine=engine)
    b, _ = generate_trace(cfg, engine=engine)
    assert _trace_fingerprint(a) == _trace_fingerprint(b)


def test_preemption_parity_on_saturated_single_pool():
    # Dense QOS mix on one saturated pool: preemption fires repeatedly
    # and both engines must agree on every eviction and requeue.
    # Low-QOS jobs saturate the pool first; wide QOS-2 arrivals then
    # block at the head and must evict them.
    rows = [
        dict(
            job_id=i + 1,
            user_id=i % 4,
            submit_time=float(i * 60),
            req_cpus=90 if i % 7 == 3 else 30,
            qos=2 if i % 7 == 3 else 0,
            timelimit_min=90.0,
            runtime_min=60.0,
        )
        for i in range(40)
    ]
    policy = PreemptionPolicy(min_preemptor_qos=2)
    ref = Simulator(
        tiny_cluster(), n_users=4, preemption=policy, engine="reference"
    ).run(make_subs([dict(r) for r in rows]))
    fast = Simulator(
        tiny_cluster(), n_users=4, preemption=policy, engine="fast"
    ).run(make_subs([dict(r) for r in rows]))
    assert ref.n_preemptions > 0  # the scenario actually preempts
    assert _trace_fingerprint(fast) == _trace_fingerprint(ref)
