"""Node-level placement: fragmentation semantics the aggregate ledger
cannot express, plus the node-level simulator mode."""

import numpy as np
import pytest

from repro.slurm.nodes import NodeLedger
from repro.slurm.resources import Cluster, NodePool, Partition
from repro.slurm.simulator import Simulator
from tests.slurm.test_simulator import make_subs


def _pool(n=4, cpus=8, mem=16.0, gpus=0):
    return NodePool("p", n_nodes=n, cpus_per_node=cpus, mem_gb_per_node=mem, gpus_per_node=gpus)


def test_simple_place_release_roundtrip():
    led = NodeLedger(_pool())
    alloc = led.place(8, 4.0, 0, req_nodes=2, exclusive=False)
    assert len(alloc.node_ids) == 2
    np.testing.assert_allclose(alloc.cpus.sum(), 8)
    np.testing.assert_allclose(alloc.mem.sum(), 4.0)
    led.release(alloc)
    np.testing.assert_allclose(led.free_cpus, 8.0)
    np.testing.assert_allclose(led.free_mem, 16.0)


def test_fragmentation_blocks_single_node_job():
    """Aggregate capacity suffices but no single node can host the job."""
    led = NodeLedger(_pool(n=4, cpus=8))
    # Take 6 CPUs on every node: 8 free CPUs total, max 2 on one node.
    for _ in range(4):
        led.place(6, 1.0, 0, req_nodes=1, exclusive=False)
    assert led.free_cpus.sum() == 8
    assert not led.can_place(4, 1.0, 0, req_nodes=1, exclusive=False)
    assert led.can_place(2, 1.0, 0, req_nodes=1, exclusive=False)
    # Spread across 4 nodes it fits again.
    assert led.can_place(8, 1.0, 0, req_nodes=4, exclusive=False)


def test_exclusive_requires_fully_free_nodes():
    led = NodeLedger(_pool(n=3, cpus=8))
    led.place(1, 0.5, 0, req_nodes=1, exclusive=False)  # dirties one node
    assert led.can_place(16, 1.0, 0, req_nodes=2, exclusive=True)
    assert not led.can_place(24, 1.0, 0, req_nodes=3, exclusive=True)
    alloc = led.place(16, 32.0, 0, req_nodes=2, exclusive=True)
    # Whole nodes are consumed regardless of the request size.
    np.testing.assert_allclose(alloc.cpus, 8.0)


def test_packing_prefers_loaded_nodes():
    led = NodeLedger(_pool(n=3, cpus=8))
    led.place(5, 1.0, 0, req_nodes=1, exclusive=False)  # node A: 3 free
    a1 = led.place(2, 1.0, 0, req_nodes=1, exclusive=False)
    # The 2-CPU job should land on the busy node, keeping two nodes clean.
    fully_free = (led.free_cpus >= 8 - 1e-9).sum()
    assert fully_free == 2
    assert a1.node_ids[0] == 0 or led.free_cpus[a1.node_ids[0]] < 8


def test_place_infeasible_raises():
    led = NodeLedger(_pool(n=1, cpus=4))
    with pytest.raises(RuntimeError, match="no feasible"):
        led.place(8, 1.0, 0, req_nodes=1, exclusive=False)
    assert not led.can_place(1, 1.0, 0, req_nodes=2, exclusive=False)


def test_gpu_placement():
    led = NodeLedger(_pool(n=2, cpus=8, gpus=4))
    alloc = led.place(4, 2.0, 4, req_nodes=1, exclusive=False)
    assert led.free_gpus[alloc.node_ids[0]] == 0
    assert not led.can_place(1, 1.0, 8, req_nodes=1, exclusive=False)


def _frag_cluster():
    pool = NodePool("p", n_nodes=2, cpus_per_node=10, mem_gb_per_node=100.0)
    return Cluster(
        "frag",
        [pool],
        [Partition("open", pool="p"), Partition("whole", pool="p", exclusive=True)],
    )


def test_simulator_node_level_fragmentation():
    """Two 6-CPU jobs fill both nodes partially; a 8-CPU single-node job
    must wait in node-level mode but not in aggregate mode."""
    rows = [
        dict(job_id=1, submit_time=0.0, req_cpus=6, req_nodes=1,
             timelimit_min=60.0, runtime_min=60.0),
        dict(job_id=2, submit_time=0.0, req_cpus=6, req_nodes=1,
             timelimit_min=60.0, runtime_min=60.0),
        dict(job_id=3, submit_time=1.0, req_cpus=8, req_nodes=1,
             timelimit_min=10.0, runtime_min=10.0),
    ]
    agg = Simulator(_frag_cluster(), n_users=2, node_level=False).run(make_subs(rows))
    node = Simulator(_frag_cluster(), n_users=2, node_level=True).run(make_subs(rows))
    q_agg = {int(j): float(v) for j, v in zip(agg.jobs.column("job_id"), agg.queue_time_min)}
    q_node = {int(j): float(v) for j, v in zip(node.jobs.column("job_id"), node.queue_time_min)}
    assert q_agg[3] == 0.0  # aggregate view: 8 CPUs free in total
    assert q_node[3] > 0.0  # node view: max 4 free on any node -> waits


def test_simulator_node_level_exclusive_partition():
    """An exclusive-partition job must wait for a fully free node."""
    rows = [
        dict(job_id=1, submit_time=0.0, partition=0, req_cpus=1, req_nodes=1,
             timelimit_min=30.0, runtime_min=30.0),
        dict(job_id=2, submit_time=0.0, partition=0, req_cpus=1, req_nodes=1,
             timelimit_min=30.0, runtime_min=30.0),
        dict(job_id=3, submit_time=1.0, partition=1, req_cpus=20, req_nodes=2,
             timelimit_min=10.0, runtime_min=10.0),
    ]
    # In node-level mode the two 1-CPU jobs pack onto ONE node (most-loaded
    # first), leaving a free node — but the exclusive job needs two.
    node = Simulator(_frag_cluster(), n_users=2, node_level=True).run(make_subs(rows))
    q = {int(j): float(v) for j, v in zip(node.jobs.column("job_id"), node.queue_time_min)}
    assert q[3] >= 29.0  # waits for the packed node to clear


def test_node_level_trace_invariants():
    rng = np.random.default_rng(0)
    rows = []
    for i in range(80):
        nodes = int(rng.choice([1, 1, 2]))
        # Keep the per-node share placeable (10 CPUs per node).
        cpus = int(rng.choice([2, 5, 10])) * nodes
        rows.append(
            dict(
                job_id=i + 1,
                user_id=int(rng.integers(0, 3)),
                submit_time=float(i * 60),
                req_cpus=cpus,
                req_nodes=nodes,
                timelimit_min=float(rng.choice([10, 60])),
                runtime_min=float(rng.uniform(1, 50)),
            )
        )
    res = Simulator(_frag_cluster(), n_users=3, node_level=True).run(make_subs(rows))
    res.jobs.validate()
    assert np.all(res.queue_time_min >= 0)


def test_node_level_validation_rejects_unplaceable():
    rows = [
        dict(job_id=1, submit_time=0.0, req_cpus=20, req_nodes=1,
             timelimit_min=10.0, runtime_min=1.0),
    ]
    # Aggregate mode accepts (20 <= 2x10 total CPUs)...
    Simulator(_frag_cluster(), n_users=1, node_level=False).run(make_subs(rows))
    # ...node-level mode rejects: one node can never host 20 CPUs.
    with pytest.raises(ValueError, match="unsatisfiable"):
        Simulator(_frag_cluster(), n_users=1, node_level=True).run(make_subs(rows))
