"""Multifactor priority behaviour."""

import numpy as np
import pytest

from repro.slurm.anvil import anvil_cluster
from repro.slurm.fairshare import FairShareTracker
from repro.slurm.priority import MultifactorPriority, PriorityWeights


def _engine(weights=None):
    c = anvil_cluster(0.05)
    fs = FairShareTracker(4)
    return c, fs, MultifactorPriority(c, fs, weights)


def _compute(engine, t, **over):
    base = dict(
        eligible_time=np.zeros(1),
        user_ids=np.zeros(1, dtype=int),
        partitions=np.zeros(1, dtype=int),
        req_cpus=np.ones(1),
        qos=np.ones(1),
    )
    base.update(over)
    return engine.compute(t, **base)


def test_age_increases_priority_until_saturation():
    _, _, eng = _engine()
    young = _compute(eng, t=0.0)[0]
    old = _compute(eng, t=24 * 3600.0)[0]
    saturated = _compute(eng, t=10 * 24 * 3600.0)[0]
    assert young < old < saturated
    very_saturated = _compute(eng, t=20 * 24 * 3600.0)[0]
    np.testing.assert_allclose(saturated, very_saturated)


def test_fairshare_term_orders_users():
    c, fs, eng = _engine()
    fs.add_usage(0, 1e7, t=0.0)
    p = eng.compute(
        0.0,
        eligible_time=np.zeros(2),
        user_ids=np.array([0, 1]),
        partitions=np.zeros(2, dtype=int),
        req_cpus=np.ones(2),
        qos=np.ones(2),
    )
    assert p[0] < p[1]


def test_partition_tier_bonus():
    c, _, eng = _engine()
    debug = c.partition_id("debug")
    shared = c.partition_id("shared")
    p = eng.compute(
        0.0,
        eligible_time=np.zeros(2),
        user_ids=np.zeros(2, dtype=int),
        partitions=np.array([debug, shared]),
        req_cpus=np.ones(2),
        qos=np.ones(2),
    )
    assert p[0] > p[1]


def test_job_size_favours_wide_jobs():
    _, _, eng = _engine()
    p = _compute(eng, 0.0, req_cpus=np.array([1.0]))
    q = _compute(eng, 0.0, req_cpus=np.array([10_000.0]))
    assert q[0] > p[0]


def test_qos_term():
    _, _, eng = _engine()
    lo = _compute(eng, 0.0, qos=np.zeros(1))
    hi = _compute(eng, 0.0, qos=np.full(1, 2.0))
    assert hi[0] > lo[0]


def test_weights_validation():
    with pytest.raises(ValueError):
        PriorityWeights(age=-1.0)
    with pytest.raises(ValueError):
        PriorityWeights(max_age_s=0.0)


def test_zero_weight_disables_term():
    _, _, eng = _engine(PriorityWeights(age=0.0))
    young = _compute(eng, t=0.0)[0]
    old = _compute(eng, t=5 * 24 * 3600.0)[0]
    np.testing.assert_allclose(young, old)
