"""Simulator observability: throughput gauge and tombstone counter.

The fast engine reports wall-clock throughput (``sim_jobs_per_second``)
and lazy-deletion pressure (``sim_events_tombstoned_total``); both feed
the a16 benchmark gate and the serving dashboards, so their wiring is
pinned here against the process-wide registry.
"""

import numpy as np
import pytest

from repro.obs.metrics import get_registry
from repro.slurm.simulator import PreemptionPolicy, Simulator
from tests.slurm.test_simulator import make_subs, tiny_cluster


@pytest.fixture
def registry():
    reg = get_registry()
    prev = reg.enabled
    reg.reset()
    reg.enabled = True
    try:
        yield reg
    finally:
        reg.enabled = prev
        reg.reset()


def _metric_value(reg, name):
    for metric_name, _labels, m in reg.items():
        if metric_name == name:
            return m.value
    raise AssertionError(f"metric {name!r} not registered")


def test_jobs_per_second_gauge_set_after_run(registry):
    rows = [
        dict(submit_time=float(i), req_cpus=10, timelimit_min=5.0, runtime_min=1.0)
        for i in range(20)
    ]
    Simulator(tiny_cluster(), n_users=4, engine="fast").run(make_subs(rows))
    assert _metric_value(registry, "sim_jobs_per_second") > 0.0


def test_tombstone_counter_bumps_under_preemption(registry):
    # Low-QOS jobs saturate the pool; a high-QOS arrival evicts them,
    # which tombstones their stale END events in the lazy-deletion queue.
    rows = [
        dict(job_id=1, submit_time=0.0, req_cpus=60, qos=0,
             timelimit_min=120.0, runtime_min=120.0),
        dict(job_id=2, submit_time=0.0, req_cpus=40, qos=0,
             timelimit_min=120.0, runtime_min=120.0),
        dict(job_id=3, submit_time=60.0, req_cpus=100, qos=2,
             timelimit_min=10.0, runtime_min=10.0),
    ]
    res = Simulator(
        tiny_cluster(),
        n_users=4,
        preemption=PreemptionPolicy(min_preemptor_qos=2),
        engine="fast",
    ).run(make_subs(rows))
    assert res.n_preemptions > 0
    assert _metric_value(registry, "sim_events_tombstoned_total") >= res.n_preemptions


def test_tombstone_counter_stays_zero_without_preemption(registry):
    rows = [
        dict(submit_time=0.0, req_cpus=10, timelimit_min=5.0, runtime_min=1.0)
    ]
    Simulator(tiny_cluster(), n_users=4, engine="fast").run(make_subs(rows))
    assert _metric_value(registry, "sim_events_tombstoned_total") == 0.0
