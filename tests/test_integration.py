"""Cross-module integration: the full paper pipeline on the session trace."""

import numpy as np

from repro.core import train_trout
from repro.core.config import ClassifierConfig, RegressorConfig, TroutConfig
from repro.eval.metrics import mean_absolute_percentage_error
from repro.features.names import FEATURE_NAMES


def test_full_pipeline_feature_names_flow(feature_matrix):
    fm, _ = feature_matrix
    assert fm.names == FEATURE_NAMES


def test_hierarchy_beats_naive_constant(feature_matrix):
    """The trained hierarchy must beat predicting the training median for
    every long-wait job — the minimum bar for 'learned something'."""
    fm, _ = feature_matrix
    cfg = TroutConfig(
        classifier=ClassifierConfig(hidden=(48, 24), epochs=30, patience=6, lr=2e-3),
        regressor=RegressorConfig(hidden=(64, 32), epochs=40, patience=6),
        seed=0,
    )
    out = train_trout(fm, cfg)
    q = fm.queue_time_min
    n = len(q)
    recent = np.arange(n - int(0.2 * n), n)
    long_te = recent[q[recent] > cfg.cutoff_min]
    if len(long_te) < 10:  # trace too mild — nothing to assert
        return
    past = np.arange(0, n - int(0.2 * n))
    long_tr = past[q[past] > cfg.cutoff_min]
    const = np.full(len(long_te), np.median(q[long_tr]))
    mape_const = mean_absolute_percentage_error(q[long_te], const)
    mape_model = out.regression_mape_holdout
    assert mape_model < mape_const * 1.2  # at worst competitive, usually better


def test_priority_feature_matches_simulator_output(small_trace, feature_matrix):
    result, _ = small_trace
    fm, _ = feature_matrix
    np.testing.assert_allclose(
        np.expm1(fm.column("priority")), result.jobs.column("priority"), rtol=1e-9
    )
