"""Search-space parameter codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpo.space import Categorical, Float, Int, SearchSpace


@given(u=st.floats(0, 1, exclude_max=True))
@settings(max_examples=50, deadline=None)
def test_float_unit_roundtrip(u):
    p = Float(0.5, 10.0)
    v = p.from_unit(u)
    assert 0.5 <= v <= 10.0
    np.testing.assert_allclose(p.to_unit(v), u, atol=1e-12)


@given(u=st.floats(0, 1, exclude_max=True))
@settings(max_examples=50, deadline=None)
def test_log_float_roundtrip(u):
    p = Float(1e-5, 1e-1, log=True)
    v = p.from_unit(u)
    assert 1e-5 <= v <= 1e-1 * (1 + 1e-12)
    np.testing.assert_allclose(p.to_unit(v), u, atol=1e-9)


def test_log_float_uniform_in_log():
    p = Float(1e-4, 1.0, log=True)
    np.testing.assert_allclose(p.from_unit(0.5), 1e-2, rtol=1e-9)


def test_int_covers_range():
    p = Int(3, 7)
    vals = {p.from_unit(u) for u in np.linspace(0, 0.999, 200)}
    assert vals == {3, 4, 5, 6, 7}


def test_int_log():
    p = Int(1, 1000, log=True)
    assert p.from_unit(0.0) == 1
    assert p.from_unit(0.9999) == 1000
    assert 10 <= p.from_unit(0.5) <= 100


def test_categorical_mapping():
    p = Categorical(["a", "b", "c"])
    assert p.from_unit(0.1) == "a"
    assert p.from_unit(0.5) == "b"
    assert p.from_unit(0.99) == "c"
    np.testing.assert_allclose(p.to_unit("b"), 0.5)


def test_validation():
    with pytest.raises(ValueError):
        Float(1.0, 1.0)
    with pytest.raises(ValueError):
        Float(0.0, 1.0, log=True)
    with pytest.raises(ValueError):
        Int(5, 3)
    with pytest.raises(ValueError):
        Categorical([])


def test_space_register_conflict():
    s = SearchSpace()
    s.register("lr", Float(0.1, 1.0))
    s.register("lr", Float(0.1, 1.0))  # identical re-registration ok
    with pytest.raises(ValueError):
        s.register("lr", Float(0.2, 1.0))
