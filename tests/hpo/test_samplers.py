"""Sampler behaviour in isolation."""

import numpy as np
import pytest

from repro.hpo.samplers import RandomSampler, TPESampler
from repro.hpo.space import Float


def test_random_sampler_uniform_coverage():
    s = RandomSampler(seed=0)
    us = [s.sample_unit(Float(0, 1), np.array([]), np.array([])) for _ in range(2000)]
    us = np.array(us)
    assert 0.0 <= us.min() and us.max() < 1.0
    # Roughly uniform deciles.
    hist, _ = np.histogram(us, bins=10, range=(0, 1))
    assert hist.min() > 120


def test_tpe_random_during_startup():
    s = TPESampler(seed=0, n_startup=10)
    # With < n_startup completed trials the sampler must not crash and
    # must stay in range.
    for n in range(9):
        u = s.sample_unit(
            Float(0, 1), np.random.rand(n), np.random.rand(n)
        )
        assert 0.0 <= u < 1.0


def test_tpe_concentrates_on_good_region():
    """Good trials cluster near 0.2; TPE suggestions should too."""
    s = TPESampler(seed=0, n_startup=5, gamma=0.25, bandwidth=0.05)
    rng = np.random.default_rng(1)
    units = np.concatenate([rng.normal(0.2, 0.02, 10), rng.uniform(0.5, 1.0, 30)])
    units = np.clip(units, 0, 0.999)
    values = np.concatenate([np.zeros(10), np.ones(30)])  # low = good
    suggestions = np.array(
        [s.sample_unit(Float(0, 1), units, values) for _ in range(50)]
    )
    assert np.mean(np.abs(suggestions - 0.2) < 0.15) > 0.7


def test_tpe_reflection_keeps_range():
    s = TPESampler(seed=0, n_startup=1, bandwidth=0.5)
    units = np.array([0.01, 0.99])
    values = np.array([0.0, 1.0])
    for _ in range(50):
        u = s.sample_unit(Float(0, 1), units, values)
        assert 0.0 <= u < 1.0


def test_log_parzen_is_normalised_density():
    s = TPESampler(seed=0, bandwidth=0.1)
    centres = np.array([0.3, 0.7])
    xs = np.linspace(-1, 2, 4001)
    log_d = s._log_parzen(xs, centres)
    integral = np.trapezoid(np.exp(log_d), xs)
    np.testing.assert_allclose(integral, 1.0, rtol=1e-3)


def test_tpe_all_good_edge_case():
    s = TPESampler(seed=0, n_startup=1, gamma=0.9)
    # One completed trial: good set == everything, bad falls back to good.
    u = s.sample_unit(Float(0, 1), np.array([0.5]), np.array([1.0]))
    assert 0.0 <= u < 1.0
