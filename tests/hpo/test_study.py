"""Study/Trial optimisation loop."""

import numpy as np
import pytest

from repro.hpo import MedianPruner, RandomSampler, Study, TPESampler, TrialPruned


def _quadratic(trial):
    x = trial.suggest_float("x", -5.0, 5.0)
    y = trial.suggest_float("y", -5.0, 5.0)
    return (x - 1.0) ** 2 + (y + 2.0) ** 2


def test_random_search_finds_decent_point():
    study = Study(sampler=RandomSampler(seed=0))
    study.optimize(_quadratic, n_trials=120)
    assert study.best_value < 1.0
    assert abs(study.best_params["x"] - 1.0) < 1.5


def test_tpe_beats_random_on_average():
    def run(sampler_cls, seed):
        s = Study(sampler=sampler_cls(seed=seed))
        s.optimize(_quadratic, n_trials=60)
        return s.best_value

    rand = np.mean([run(RandomSampler, s) for s in range(5)])
    tpe = np.mean([run(TPESampler, s) for s in range(5)])
    assert tpe <= rand * 1.1  # TPE at least competitive, usually better


def test_suggest_int_and_categorical():
    def objective(trial):
        n = trial.suggest_int("n", 1, 10)
        act = trial.suggest_categorical("act", ["relu", "elu"])
        return float(n) + (0.0 if act == "elu" else 0.5)

    study = Study(sampler=RandomSampler(seed=0))
    study.optimize(objective, n_trials=80)
    assert study.best_params["n"] == 1
    assert study.best_params["act"] == "elu"


def test_repeated_suggest_same_trial_returns_same_value():
    seen = {}

    def objective(trial):
        a = trial.suggest_float("a", 0.0, 1.0)
        b = trial.suggest_float("a", 0.0, 1.0)
        seen["pair"] = (a, b)
        return a

    Study(sampler=RandomSampler(seed=0)).optimize(objective, n_trials=1)
    assert seen["pair"][0] == seen["pair"][1]


def test_pruned_trials_recorded_but_unscored():
    def objective(trial):
        x = trial.suggest_float("x", 0.0, 1.0)
        trial.report(0, x)
        if trial.number >= 3:
            raise TrialPruned
        return x

    study = Study(sampler=RandomSampler(seed=0))
    study.optimize(objective, n_trials=6)
    assert len(study.trials) == 6
    assert len(study.completed_trials) == 3
    assert all(t.pruned for t in study.trials[3:])


def test_median_pruner_logic():
    pruner = MedianPruner(n_startup_trials=2, n_warmup_steps=1)
    history = [{0: 1.0, 1: 1.0}, {0: 2.0, 1: 2.0}]
    # Below startup threshold: never prune.
    assert not MedianPruner(n_startup_trials=5).should_prune(1, 99.0, history)
    # Warmup step: never prune.
    assert not pruner.should_prune(0, 99.0, history)
    # Worse than median at step 1 -> prune.
    assert pruner.should_prune(1, 3.0, history)
    assert not pruner.should_prune(1, 1.2, history)
    # Unseen step: no baseline, no pruning.
    assert not pruner.should_prune(9, 99.0, history)


def test_should_prune_requires_report():
    def objective(trial):
        trial.suggest_float("x", 0.0, 1.0)
        with pytest.raises(KeyError):
            trial.should_prune(0)
        return 0.0

    Study().optimize(objective, n_trials=1)


def test_empty_study_best_raises():
    with pytest.raises(RuntimeError):
        Study().best_trial
    with pytest.raises(ValueError):
        Study().optimize(lambda t: 0.0, n_trials=0)


def test_tpe_sampler_validation():
    with pytest.raises(ValueError):
        TPESampler(gamma=0.0)
    with pytest.raises(ValueError):
        TPESampler(n_startup=0)
