"""Structured event log: schema, levels, ring, sink, rotation, concurrency.

Log instances are constructed with ``enabled=True`` throughout so the
suite is independent of ``REPRO_TELEMETRY`` (CI runs it both ways).
"""

import json
import threading

import pytest

from repro.obs.events import (
    EventLog,
    EventSchemaError,
    FileSink,
    configure_event_log,
    emit,
    get_event_log,
    iter_jsonl,
    reset_event_log,
)
from repro.obs.metrics import MetricsRegistry, get_registry


def make_log(**kwargs) -> EventLog:
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("forward", False)
    return EventLog(**kwargs)


# ---------------------------------------------------------------------- #
# schema and levels
# ---------------------------------------------------------------------- #
def test_emit_returns_the_record():
    log = make_log()
    rec = log.emit("serve.access", request_id="r1", status=200)
    assert rec["event"] == "serve.access"
    assert rec["level"] == "info"
    assert rec["request_id"] == "r1"
    assert rec["status"] == 200
    assert isinstance(rec["ts"], float)
    assert log.tail() == [rec]


@pytest.mark.parametrize(
    "name", ["", "Serve.Access", "serve..x", "9starts_with_digit", "has space", "a.-b"]
)
def test_bad_event_names_raise(name):
    with pytest.raises(EventSchemaError, match="snake_case"):
        make_log().emit(name)


def test_reserved_fields_raise():
    # ("level" and "event" are real parameters of emit, so only "ts"
    # can collide as a field.)
    with pytest.raises(EventSchemaError, match="reserved"):
        make_log().emit("ok.event", ts=1)


def test_unknown_level_raises():
    with pytest.raises(EventSchemaError, match="level"):
        make_log().emit("ok.event", level="loud")


def test_min_level_filters_the_ring():
    log = make_log(min_level="warning")
    assert log.emit("chat.ty", level="debug") is None
    assert log.emit("chat.ty", level="info") is None
    assert log.emit("bad.news", level="warning") is not None
    assert [r["event"] for r in log.tail()] == ["bad.news"]


def test_ring_is_bounded():
    log = make_log(ring_size=10)
    for i in range(25):
        log.emit("tick.tock", i=i)
    tail = log.tail()
    assert len(tail) == 10
    assert [r["i"] for r in tail] == list(range(15, 25))
    assert [r["i"] for r in log.tail(3)] == [22, 23, 24]


def test_non_jsonable_values_degrade_to_repr(tmp_path):
    log = make_log(sink_level="debug")
    log.configure_file(tmp_path / "ev.jsonl")

    class Weird:
        def __repr__(self):
            return "<weird>"

    log.emit("odd.value", thing=Weird())
    log.close()
    (rec,) = iter_jsonl(tmp_path / "ev.jsonl")
    assert rec["thing"] == "<weird>"


def test_bad_level_constructor_args():
    with pytest.raises(ValueError, match="levels"):
        EventLog(min_level="chatty")
    with pytest.raises(ValueError, match="levels"):
        EventLog(sink_level="chatty")


# ---------------------------------------------------------------------- #
# enabled switch
# ---------------------------------------------------------------------- #
def test_disabled_log_is_null():
    log = make_log(enabled=False)
    assert log.emit("no.body") is None
    assert log.tail() == []


def test_enabled_none_follows_registry():
    log = make_log(enabled=None)
    prev = get_registry().enabled
    try:
        get_registry().enabled = True
        assert log.emit("seen.event") is not None
        get_registry().enabled = False
        assert log.emit("unseen.event") is None
    finally:
        get_registry().enabled = prev
    assert [r["event"] for r in log.tail()] == ["seen.event"]


# ---------------------------------------------------------------------- #
# file sink and rotation
# ---------------------------------------------------------------------- #
def test_sink_level_gates_file_but_not_ring(tmp_path):
    log = make_log(sink_level="info")
    log.configure_file(tmp_path / "ev.jsonl")
    log.emit("quiet.debug", level="debug")
    log.emit("loud.info", level="info")
    log.close()
    assert len(log.tail()) == 2  # ring sees everything
    assert [r["event"] for r in iter_jsonl(tmp_path / "ev.jsonl")] == ["loud.info"]


def test_rotation_keeps_every_record(tmp_path):
    path = tmp_path / "ev.jsonl"
    log = make_log(sink_level="debug")
    # ~70-byte records against a 1 KiB cap: forces many generations.
    log.configure_file(path, max_bytes=1024, backups=50)
    n = 200
    for i in range(n):
        log.emit("rotate.me", i=i)
    log.close()
    records = list(iter_jsonl(path))
    assert [r["i"] for r in records] == list(range(n))
    assert any(path.with_name(f"{path.name}.{k}").exists() for k in (1, 2))


def test_rotation_drops_only_the_oldest_generation(tmp_path):
    path = tmp_path / "ev.jsonl"
    sink = FileSink(path, max_bytes=200, backups=1)
    lines = [json.dumps({"i": i, "pad": "x" * 40}) for i in range(20)]
    for line in lines:
        sink.write(line)
    sink.close()
    kept = [r["i"] for r in iter_jsonl(path)]
    # A contiguous suffix survives: newest records never vanish first.
    assert kept == list(range(20 - len(kept), 20))
    assert kept  # something survives
    assert not path.with_name(f"{path.name}.2").exists()


def test_file_sink_validates_args(tmp_path):
    with pytest.raises(ValueError):
        FileSink(tmp_path / "x", max_bytes=0)
    with pytest.raises(ValueError):
        FileSink(tmp_path / "x", backups=-1)


def test_sink_failure_counts_dropped(tmp_path):
    log = make_log(sink_level="debug")
    log.configure_file(tmp_path / "ev.jsonl")
    log._sink._fh.close()  # simulate the disk going away
    log.emit("lost.write")
    assert log.dropped == 1
    assert len(log.tail()) == 1  # the ring still has it
    log._sink = None


# ---------------------------------------------------------------------- #
# concurrency: complete lines, complete history
# ---------------------------------------------------------------------- #
def test_concurrent_emitters_tear_nothing_lose_nothing(tmp_path):
    path = tmp_path / "ev.jsonl"
    log = make_log(ring_size=10_000, sink_level="debug")
    # Small cap + ample backups: rotation happens repeatedly mid-storm
    # and still must not lose or interleave a single record.
    log.configure_file(path, max_bytes=16 << 10, backups=64)
    n_threads, per_thread = 8, 250
    barrier = threading.Barrier(n_threads)

    def storm(t: int) -> None:
        barrier.wait(timeout=30)
        for i in range(per_thread):
            log.emit("storm.event", thread=t, i=i, pad="p" * 40)

    threads = [
        threading.Thread(target=storm, args=(t,), daemon=True)
        for t in range(n_threads)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=60)
    log.close()

    assert log.dropped == 0
    # Every line parses (no torn/interleaved writes) ...
    records = list(iter_jsonl(path))
    # ... and every (thread, i) pair is present exactly once.
    seen = [(r["thread"], r["i"]) for r in records]
    assert len(seen) == n_threads * per_thread
    assert set(seen) == {
        (t, i) for t in range(n_threads) for i in range(per_thread)
    }
    # Per-thread order is preserved by the single lock.
    for t in range(n_threads):
        order = [i for tt, i in seen if tt == t]
        assert order == sorted(order)


# ---------------------------------------------------------------------- #
# global log plumbing
# ---------------------------------------------------------------------- #
@pytest.fixture
def global_log(tmp_path):
    glog = get_event_log()
    prev = glog._enabled
    glog._enabled = True
    glog.clear()
    yield glog
    glog._enabled = prev
    reset_event_log()


def test_global_emit_and_configure(global_log, tmp_path):
    configure_event_log(tmp_path / "global.jsonl", sink_level="debug")
    emit("global.hello", level="debug", k=1)
    get_event_log().flush()
    (rec,) = iter_jsonl(tmp_path / "global.jsonl")
    assert rec["event"] == "global.hello"
    assert global_log.tail()[-1]["event"] == "global.hello"
    reset_event_log()
    assert global_log.tail() == []


def test_iter_jsonl_skips_blank_lines(tmp_path):
    p = tmp_path / "f.jsonl"
    p.write_text('{"a":1}\n\n{"a":2}\n')
    assert [r["a"] for r in iter_jsonl(p)] == [1, 2]


def test_iter_jsonl_missing_file_is_empty(tmp_path):
    assert list(iter_jsonl(tmp_path / "absent.jsonl")) == []
