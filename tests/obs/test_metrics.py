"""Metrics registry: instruments, identity, null path, bucket maths."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)


def reg():
    return MetricsRegistry(enabled=True)


# ---------------------------------------------------------------------- #
# instruments
# ---------------------------------------------------------------------- #
def test_counter_monotonic():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_up_and_down():
    g = Gauge()
    g.set(5.0)
    g.inc(2.0)
    g.dec(3.0)
    assert g.value == 4.0


def test_histogram_bucket_placement():
    h = Histogram((1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 5000.0):
        h.observe(v)
    # bisect_left: a value equal to a bound lands in that bound's bucket.
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(5056.5)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError):
        Histogram((1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram((2.0, 1.0))


def test_log_buckets_ladder():
    b = log_buckets(1.0, 100.0, per_decade=1)
    assert b[0] == pytest.approx(1.0)
    assert b[-1] >= 100.0
    assert all(y > x for x, y in zip(b, b[1:]))
    with pytest.raises(ValueError):
        log_buckets(0.0, 1.0)
    with pytest.raises(ValueError):
        log_buckets(1.0, 100.0, per_decade=0)


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
def test_get_or_create_returns_same_handle():
    r = reg()
    a = r.counter("x_total")
    b = r.counter("x_total")
    assert a is b
    a.inc()
    assert b.value == 1.0


def test_labels_split_series():
    r = reg()
    a = r.counter("t_total", labels={"model": "a"})
    b = r.counter("t_total", labels={"model": "b"})
    assert a is not b
    a.inc(3)
    assert b.value == 0.0
    # Label insertion order does not matter for identity.
    c = r.gauge("g", labels={"x": "1", "y": "2"})
    d = r.gauge("g", labels={"y": "2", "x": "1"})
    assert c is d


def test_kind_conflict_raises():
    r = reg()
    r.counter("n")
    with pytest.raises(ValueError, match="already registered"):
        r.gauge("n")


def test_help_text_kept_first_wins():
    r = reg()
    r.counter("h_total", help="first")
    r.counter("h_total", help="second")
    assert r.help_for("h_total") == "first"
    assert r.help_for("unknown") == ""


def test_snapshot_shape_and_reset():
    r = reg()
    r.counter("c_total").inc(2)
    r.gauge("g").set(1.5)
    r.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
    snap = r.snapshot()
    assert [e["name"] for e in snap["counters"]] == ["c_total"]
    assert snap["gauges"][0]["value"] == 1.5
    hist = snap["histograms"][0]
    assert hist["counts"] == [0, 1, 0] and hist["count"] == 1
    r.reset()
    assert r.snapshot() == {"counters": [], "gauges": [], "histograms": []}


def test_disabled_registry_hands_out_nulls():
    r = MetricsRegistry(enabled=False)
    c = r.counter("c_total")
    c.inc(100)
    g = r.gauge("g")
    g.set(5)
    h = r.histogram("h")
    h.observe(1.0)
    assert c.value == 0.0 and g.value == 0.0 and h.count == 0
    # Nothing registered: the snapshot stays empty.
    assert r.snapshot() == {"counters": [], "gauges": [], "histograms": []}


def test_concurrent_creation_single_instance():
    r = reg()
    handles = []

    def grab():
        handles.append(r.counter("race_total"))

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(h is handles[0] for h in handles)
