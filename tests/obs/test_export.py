"""Exporters: Prometheus text format, JSON snapshots, terminal report."""

import json

import pytest

from repro.obs.export import (
    SNAPSHOT_VERSION,
    format_span_tree,
    render_report,
    render_snapshot,
    snapshot,
    to_chrome,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


def make_registry():
    r = MetricsRegistry(enabled=True)
    r.counter("jobs_total", help="jobs processed").inc(5)
    r.gauge("depth").set(2.5)
    r.histogram("wait_seconds", buckets=(1.0, 10.0)).observe(0.5)
    r.histogram("wait_seconds", buckets=(1.0, 10.0)).observe(3.0)
    r.histogram("wait_seconds", buckets=(1.0, 10.0)).observe(100.0)
    return r


# ---------------------------------------------------------------------- #
# Prometheus text format
# ---------------------------------------------------------------------- #
def test_prometheus_headers_and_values():
    text = to_prometheus(make_registry())
    assert "# HELP jobs_total jobs processed" in text
    assert "# TYPE jobs_total counter" in text
    assert "# TYPE depth gauge" in text
    assert "# TYPE wait_seconds histogram" in text
    assert "jobs_total 5" in text
    assert "depth 2.5" in text


def test_prometheus_buckets_are_cumulative_and_end_at_inf():
    text = to_prometheus(make_registry())
    lines = [l for l in text.splitlines() if l.startswith("wait_seconds")]
    assert 'wait_seconds_bucket{le="1"} 1' in lines
    assert 'wait_seconds_bucket{le="10"} 2' in lines
    assert 'wait_seconds_bucket{le="+Inf"} 3' in lines
    assert "wait_seconds_sum 103.5" in lines
    assert "wait_seconds_count 3" in lines
    # Cumulative counts never decrease down the bucket ladder.
    counts = [
        int(l.rsplit(" ", 1)[1]) for l in lines if "_bucket" in l
    ]
    assert counts == sorted(counts)


def test_prometheus_label_escaping():
    r = MetricsRegistry(enabled=True)
    r.counter("c_total", labels={"path": 'a\\b"c\nd'}).inc()
    text = to_prometheus(r)
    assert '{path="a\\\\b\\"c\\nd"}' in text


def test_prometheus_header_emitted_once_per_name():
    r = MetricsRegistry(enabled=True)
    r.counter("m_total", help="h", labels={"k": "1"}).inc()
    r.counter("m_total", help="h", labels={"k": "2"}).inc()
    text = to_prometheus(r)
    assert text.count("# TYPE m_total counter") == 1
    assert text.count("m_total{") == 2


def test_prometheus_empty_registry():
    assert to_prometheus(MetricsRegistry(enabled=True)) == ""


# ---------------------------------------------------------------------- #
# snapshot / JSON
# ---------------------------------------------------------------------- #
def test_snapshot_carries_versioned_metrics_and_spans():
    tr = Tracer(retain=True)
    with tr.span("root"):
        pass
    snap = snapshot(make_registry(), tr)
    assert snap["version"] == SNAPSHOT_VERSION
    assert snap["spans"][0]["name"] == "root"
    # JSON round-trip preserves everything.
    clone = json.loads(to_json(snap))
    assert clone == snap


def test_snapshot_drain_empties_tracer():
    tr = Tracer(retain=True)
    with tr.span("once"):
        pass
    snapshot(MetricsRegistry(enabled=True), tr, drain_spans=True)
    assert len(tr.roots) == 0


# ---------------------------------------------------------------------- #
# terminal rendering
# ---------------------------------------------------------------------- #
def test_format_span_tree_merges_and_indents():
    root = Span("fit", elapsed=10.0)
    root.children = [
        Span("epoch", elapsed=2.0),
        Span("epoch", elapsed=3.0),
        Span("eval", elapsed=1.0),
    ]
    text = format_span_tree([root])
    assert "fit 10000.0 ms (100.0%)" in text
    assert "epoch ×2 5000.0 ms (50.0%)" in text
    assert "└─ eval" in text


def test_render_report_includes_all_sections():
    tr = Tracer(retain=True)
    with tr.span("pipeline"):
        with tr.span("stage"):
            pass
    snap = snapshot(make_registry(), tr)
    text = render_report(snap)
    assert "── spans" in text
    assert "stage timings — pipeline:" in text
    assert "jobs_total" in text
    assert "wait_seconds" in text


def test_render_report_empty_snapshot():
    snap = snapshot(MetricsRegistry(enabled=True), Tracer(retain=True))
    assert render_report(snap) == "(no telemetry recorded)"


def test_render_snapshot_rejects_unknown_version():
    with pytest.raises(ValueError, match="version"):
        render_snapshot({"version": 999, "metrics": {}, "spans": []})


# ---------------------------------------------------------------------- #
# version-1 snapshots (PR 3, before span identity) stay readable
# ---------------------------------------------------------------------- #
#: A span dict exactly as version-1 ``to_dict`` wrote it — no trace_id /
#: span_id / parent_id / start / tid keys.
_V1_SPAN = {
    "name": "fit",
    "elapsed": 2.0,
    "alloc_blocks": 10,
    "count": 1,
    "meta": {"epochs": 3},
    "children": [
        {
            "name": "epoch",
            "elapsed": 0.5,
            "alloc_blocks": 0,
            "count": 1,
            "meta": {},
            "children": [],
        }
    ],
}


def test_render_snapshot_reads_version_1():
    text = render_snapshot(
        {"version": 1, "metrics": {}, "spans": [_V1_SPAN]}
    )
    assert "fit" in text
    assert "epoch" in text


def test_span_from_dict_v1_regenerates_identity():
    span = Span.from_dict(_V1_SPAN)
    assert span.trace_id and span.span_id  # regenerated, not empty
    assert span.parent_id == ""
    assert span.start == 0.0 and span.tid == 0
    assert span.meta == {"epochs": 3}
    (child,) = span.children
    assert child.span_id and child.span_id != span.span_id


def test_span_roundtrip_preserves_identity():
    tr = Tracer(retain=True)
    with tr.span("outer"):
        with tr.span("inner"):
            pass
    (root,) = tr.drain()
    clone = Span.from_dict(json.loads(json.dumps(root.to_dict())))
    assert clone.trace_id == root.trace_id
    assert clone.span_id == root.span_id
    assert clone.children[0].parent_id == root.span_id
    assert clone.children[0].trace_id == root.trace_id
    assert clone.start == root.start
    assert clone.tid == root.tid


# ---------------------------------------------------------------------- #
# Chrome trace-event export
# ---------------------------------------------------------------------- #
def test_to_chrome_emits_complete_events():
    tr = Tracer(retain=True)
    with tr.span("outer", foo=1):
        with tr.span("inner"):
            pass
    snap = snapshot(MetricsRegistry(enabled=True), tr)
    doc = json.loads(to_chrome(snap))
    assert doc["displayTimeUnit"] == "ms"
    events = {e["name"]: e for e in doc["traceEvents"]}
    assert set(events) == {"outer", "inner"}
    outer, inner = events["outer"], events["inner"]
    for e in (outer, inner):
        assert e["ph"] == "X"
        assert e["pid"] == 1
        assert e["tid"] >= 1
        assert e["dur"] >= 0.0
    # Timestamps rebase to the earliest span; nesting is preserved.
    assert outer["ts"] == 0.0
    assert inner["ts"] >= outer["ts"]
    assert inner["dur"] <= outer["dur"]
    # Identity rides in args so Perfetto's detail pane can join lanes.
    assert inner["args"]["trace_id"] == outer["args"]["trace_id"]
    assert inner["args"]["parent_id"] == outer["args"]["span_id"]
    assert "parent_id" not in outer["args"]
    assert outer["args"]["foo"] == 1


def test_to_chrome_reads_version_1_spans():
    doc = json.loads(
        to_chrome({"version": 1, "metrics": {}, "spans": [_V1_SPAN]})
    )
    events = doc["traceEvents"]
    assert {e["name"] for e in events} == {"fit", "epoch"}
    # No start info in v1: everything lands at t=0, durations survive.
    assert all(e["ts"] == 0.0 for e in events)
    assert {e["dur"] for e in events} == {2.0e6, 0.5e6}


def test_to_chrome_empty_snapshot():
    doc = json.loads(
        to_chrome({"version": SNAPSHOT_VERSION, "metrics": {}, "spans": []})
    )
    assert doc["traceEvents"] == []
