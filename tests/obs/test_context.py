"""Trace-context ids, sanitisation, and the frozen hand-off record."""

import dataclasses
import re
import time

import pytest

from repro.obs.context import (
    TraceContext,
    clean_request_id,
    new_request_id,
    new_span_id,
    new_trace_id,
    wall_now,
)
from repro.obs.tracing import Span

_TRACE_RE = re.compile(r"^t[0-9a-f]+-[0-9a-f]{8}$")
_SPAN_RE = re.compile(r"^s[0-9a-f]+-[0-9a-f]{8}$")
_REQUEST_RE = re.compile(r"^r[0-9a-f]+-[0-9a-f]{8}$")


def test_id_formats():
    assert _TRACE_RE.match(new_trace_id())
    assert _SPAN_RE.match(new_span_id())
    assert _REQUEST_RE.match(new_request_id())


def test_ids_are_unique_across_kinds():
    ids = {new_trace_id() for _ in range(500)}
    ids |= {new_span_id() for _ in range(500)}
    ids |= {new_request_id() for _ in range(500)}
    assert len(ids) == 1500


def test_ids_are_valid_request_ids_themselves():
    # Our own ids must survive the sanitiser (the serve path echoes them).
    assert clean_request_id(new_request_id()) is not None
    assert clean_request_id(new_trace_id()) is not None


def test_clean_request_id_accepts_sane_client_ids():
    for raw in ("abc", "a-b_c.d:e", "A" * 64, "0", "req:2024-01-01.7"):
        assert clean_request_id(raw) == raw


@pytest.mark.parametrize(
    "raw",
    ["", "a" * 65, "has space", "newline\n", "emoji☃", "quote\"", None, 5, b"x"],
)
def test_clean_request_id_rejects_garbage(raw):
    assert clean_request_id(raw) is None


def test_wall_now_is_wall_clock():
    before = time.time()
    now = wall_now()
    after = time.time()
    assert before <= now <= after


def test_trace_context_is_frozen():
    ctx = TraceContext(trace_id="t1", span_id="s1", request_id="r1")
    with pytest.raises(dataclasses.FrozenInstanceError):
        ctx.trace_id = "t2"


def test_span_context_packages_identity():
    span = Span("work")
    ctx = span.context("req-9")
    assert ctx == TraceContext(
        trace_id=span.trace_id, span_id=span.span_id, request_id="req-9"
    )
    assert span.context().request_id is None
