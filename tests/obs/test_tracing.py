"""Span trees: nesting, retention, cross-process grafting, timings."""

import pickle
import threading
import time

from repro.obs.tracing import Span, Tracer, span_timings


def test_nested_spans_build_a_tree():
    tr = Tracer(retain=True)
    with tr.span("root") as root:
        with tr.span("a"):
            time.sleep(0.002)
        with tr.span("b"):
            with tr.span("b1"):
                pass
    assert [c.name for c in root.children] == ["a", "b"]
    assert [c.name for c in root.children[1].children] == ["b1"]
    assert root.elapsed >= root.children[0].elapsed
    assert tr.roots[-1] is root


def test_spans_measure_even_without_retention():
    """The overhead contract: REPRO_TELEMETRY=0 keeps timings working —
    only the finished-root history is dropped."""
    tr = Tracer(retain=False)
    with tr.span("root") as root:
        with tr.span("stage"):
            time.sleep(0.002)
    assert root.elapsed > 0
    assert root.children[0].elapsed > 0
    assert len(tr.roots) == 0


def test_root_buffer_is_bounded():
    tr = Tracer(max_roots=3, retain=True)
    for i in range(10):
        with tr.span(f"r{i}"):
            pass
    assert len(tr.roots) == 3
    assert [r.name for r in tr.roots] == ["r7", "r8", "r9"]


def test_drain_empties_roots():
    tr = Tracer(retain=True)
    with tr.span("x"):
        pass
    out = tr.drain()
    assert [r.name for r in out] == ["x"]
    assert len(tr.roots) == 0


def test_attach_grafts_under_current_span():
    tr = Tracer(retain=True)
    worker_rec = Span("chunk", elapsed=0.5)
    with tr.span("parent") as parent:
        tr.attach(worker_rec)
    assert parent.children == [worker_rec]
    # With no open span, attach retains at root level.
    other = Span("loose")
    tr.attach(other)
    assert tr.roots[-1] is other


def test_span_is_picklable_round_trip():
    rec = Span("w", elapsed=1.25, meta={"rows": 10})
    rec.children.append(Span("inner", elapsed=0.25))
    clone = pickle.loads(pickle.dumps(rec))
    assert clone.name == "w" and clone.children[0].elapsed == 0.25


def test_to_dict_from_dict_round_trip():
    rec = Span("r", elapsed=2.0, alloc_blocks=7, meta={"k": 1})
    rec.children.append(Span("c", elapsed=1.0))
    clone = Span.from_dict(rec.to_dict())
    assert clone.meta == {"k": 1}
    assert clone.children[0].name == "c"
    assert clone.alloc_blocks == 7


def test_span_timings_sums_same_name_children():
    root = Span("fit", elapsed=10.0)
    root.children = [Span("epoch", elapsed=2.0), Span("epoch", elapsed=3.0)]
    t = span_timings(root)
    assert t == {"epoch": 5.0, "total": 10.0}


def test_thread_local_stacks_do_not_interleave():
    tr = Tracer(retain=True)
    errors = []

    def worker(name):
        try:
            with tr.span(name) as rec:
                time.sleep(0.005)
                assert tr.current() is rec
        except AssertionError as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Each thread's span finished with an empty stack -> all become roots.
    assert sorted(r.name for r in tr.roots) == ["t0", "t1", "t2", "t3"]


def test_exception_inside_span_still_closes_it():
    tr = Tracer(retain=True)
    try:
        with tr.span("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    assert tr.current() is None
    assert tr.roots[-1].name == "boom"
