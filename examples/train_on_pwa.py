#!/usr/bin/env python
"""Train TROUT on a Parallel-Workloads-Archive trace.

The paper's data is proprietary, but the PWA distributes real accounting
logs from production systems in the 18-field standard SWF — which carries
everything queue-time prediction needs (wait times included).  This
example shows the complete path:

    standard .swf file ──► JobSet ──► Table II features ──► TROUT

Point ``--swf`` at any archive trace (e.g. ANL-Intrepid, CEA-Curie,
KIT-FH2 from https://www.cs.huji.ac.il/labs/parallel/workload/).  Without
a file, the example writes one itself from the simulator — exercising the
identical parser and pipeline, offline.

Run:  python examples/train_on_pwa.py [--swf TRACE.swf]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.core import TroutConfig, train_trout
from repro.core.config import RuntimeModelConfig
from repro.core.runtime_model import RuntimePredictor
from repro.data.pwa import read_standard_swf, write_standard_swf
from repro.features.pipeline import FeaturePipeline
from repro.slurm.resources import Cluster, NodePool, Partition
from repro.workload import WorkloadConfig, generate_trace


def cluster_for_trace(jobs, cpus_per_node=128):
    """A generic cluster shape sized to the trace's partitions.

    PWA traces don't describe the machine, so the static-spec features use
    a pool generously sized to the largest observed request per queue.
    """
    max_cpus = int(jobs.column("req_cpus").max())
    n_nodes = max(8, int(np.ceil(2.0 * max_cpus / cpus_per_node)))
    mem_per_node = max(256.0, 2.0 * float(jobs.column("req_mem_gb").max()) / n_nodes)
    pool = NodePool("p", n_nodes=n_nodes, cpus_per_node=cpus_per_node,
                    mem_gb_per_node=mem_per_node)
    partitions = [Partition(name, pool="p") for name in jobs.partition_names]
    return Cluster("pwa", [pool], partitions)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--swf", type=Path, default=None, help="a standard SWF trace")
    args = ap.parse_args()

    if args.swf is None:
        print("no --swf given: writing a synthetic standard-SWF file first...")
        trace, _ = generate_trace(WorkloadConfig(n_jobs=20_000, seed=7, load=0.32))
        args.swf = Path("/tmp/repro_synthetic.swf")
        write_standard_swf(trace.jobs, args.swf)

    print(f"reading {args.swf} ...")
    jobs = read_standard_swf(args.swf)
    q = jobs.queue_time_min
    print(
        f"  {len(jobs)} jobs, {len(jobs.partition_names)} queues, "
        f"{100 * np.mean(q < 10):.1f}% under 10 min"
    )

    cluster = cluster_for_trace(jobs)
    config = TroutConfig(seed=0)

    # Leakage-safe runtime model on the oldest sixth, then the pipeline.
    n_rt = max(10, len(jobs) // 6)
    runtime = RuntimePredictor(RuntimeModelConfig(), seed=0).fit(
        jobs[np.arange(n_rt)]
    )
    fm = FeaturePipeline(cluster).compute(
        jobs, pred_runtime_min=runtime.predict_minutes(jobs)
    )

    print("training TROUT...")
    result = train_trout(fm, config)
    print(f"  classifier holdout accuracy: {result.classifier_accuracy:.4f}")
    print(
        f"  regressor MAPE on long-wait holdout jobs: "
        f"{result.regression_mape_holdout:.1f}%"
    )
    print("\nnote: PWA traces carry no Slurm priority, so that feature is "
          "constant — accuracy on archive traces leans on the queue/running "
          "aggregates and user history instead.")


if __name__ == "__main__":
    main()
