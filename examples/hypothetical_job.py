#!/usr/bin/env python
"""Hypothetical job queuing — the paper's §V extension, end to end.

"This would involve a user supplying TROUT with the parameters requested
for a job they wish to submit … allowing users to get an estimate without
actually submitting a job.  This could allow users to optimize their job
submissions until they achieve parameters that will result in their job
running within a desired time frame."

This example trains a model, then sweeps a hypothetical job's requested
CPU count and walltime to show how the predicted wait changes — the
submission-optimisation loop the paper envisions.

Run:  python examples/hypothetical_job.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TroutConfig, train_trout
from repro.core.training import build_feature_matrix
from repro.data.schema import JOB_DTYPE, JobSet
from repro.eval.report import format_table
from repro.features.pipeline import FeaturePipeline
from repro.workload import WorkloadConfig, generate_trace


def hypothetical_row(jobs: JobSet, partition: int, cpus: int, mem_gb: float,
                     nodes: int, timelimit_min: float) -> JobSet:
    """Append an unsubmitted job at 'now' with an empty pending interval."""
    t_now = float(jobs.column("eligible_time").max()) + 1.0
    rec = np.zeros(1, dtype=JOB_DTYPE)
    rec["job_id"] = jobs.column("job_id").max() + 1
    rec["partition"] = partition
    rec["submit_time"] = rec["eligible_time"] = t_now
    rec["start_time"] = rec["end_time"] = t_now  # unknown: empty intervals
    rec["req_cpus"] = cpus
    rec["req_mem_gb"] = mem_gb
    rec["req_nodes"] = nodes
    rec["timelimit_min"] = timelimit_min
    rec["priority"] = float(np.median(jobs.column("priority")))
    return jobs.concat(JobSet(rec, jobs.partition_names))


def main() -> None:
    print("simulating + training (one-time setup)...")
    trace, cluster = generate_trace(WorkloadConfig(n_jobs=20_000, seed=7, load=0.32))
    config = TroutConfig(seed=0)
    fm, runtime_model = build_feature_matrix(trace.jobs, cluster, config)
    model = train_trout(fm, config).model
    pipeline = FeaturePipeline(cluster)

    shared = list(trace.jobs.partition_names).index("shared")
    print("\nsweeping hypothetical 'shared' submissions at the trace's end:")
    rows = []
    for cpus in (4, 16, 64, 128):
        for tl in (60.0, 480.0, 2880.0):
            extended = hypothetical_row(
                trace.jobs, shared, cpus, mem_gb=2.0 * cpus, nodes=1,
                timelimit_min=tl,
            )
            pred_rt = runtime_model.predict_minutes(extended)
            X = pipeline.compute(extended, pred_runtime_min=pred_rt).X
            p = model.predict(X[-1:])[0]
            estimate = (
                f"< {model.cutoff_min:.0f} min"
                if not p.long_wait
                else f"~ {p.minutes:.0f} min"
            )
            rows.append([cpus, f"{tl:.0f}", f"{p.p_long:.2f}", estimate])
    print(
        format_table(
            ["req CPUs", "timelimit (min)", "P(long wait)", "estimated wait"],
            rows,
        )
    )
    print(
        "\nlarger/longer requests should trend toward higher long-wait "
        "probability — the signal a user would exploit to tune their "
        "submission."
    )


if __name__ == "__main__":
    main()
