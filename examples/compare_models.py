#!/usr/bin/env python
"""Reproduce the paper's model comparison (Figs. 6-9) at example scale.

Trains the neural network, XGBoost-style gradient boosting, random forest
and kNN on identical time-series folds of a simulated trace and prints the
average-percent-error and within-100 %-error series per fold — the two
metrics of §IV.

Run:  python examples/compare_models.py          (~2 min)
      python examples/compare_models.py --tune   (NN gets the Optuna-style
                                                  HPO treatment; slower)
"""

from __future__ import annotations

import argparse

from repro.core import TroutConfig, TuningConfig
from repro.core.training import build_feature_matrix
from repro.eval.comparison import compare_models
from repro.eval.report import format_table
from repro.workload import WorkloadConfig, generate_trace


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--n-jobs", type=int, default=30_000)
    ap.add_argument("--tune", action="store_true", help="TPE-tune the NN per fold")
    ap.add_argument("--trials", type=int, default=15)
    args = ap.parse_args()

    print("simulating + featurising...")
    trace, cluster = generate_trace(
        WorkloadConfig(n_jobs=args.n_jobs, seed=7, load=0.32)
    )
    config = TroutConfig(seed=0)
    fm, _ = build_feature_matrix(trace.jobs, cluster, config)

    tuning = TuningConfig(n_trials=args.trials, seed=0) if args.tune else None
    print("training the model zoo on folds 4 and 5...")
    comparison = compare_models(fm, config, folds=[4, 5], tuning=tuning)

    for fold in (4, 5):
        print(f"\n--- fold {fold} ---")
        mape = comparison.series("mape", fold)
        within = comparison.series("within_100", fold)
        rows = [
            [m, mape[m], 100 * within[m]]
            for m in sorted(mape, key=mape.get)
        ]
        print(
            format_table(
                ["model", "avg percent error", "% within 100% error"], rows
            )
        )
        print(f"winner (APE): {comparison.winner('mape', fold)}")


if __name__ == "__main__":
    main()
