#!/usr/bin/env python
"""Feature attribution — the paper's SHAP-guided feature pruning workflow.

§III: features "were then eliminated based on decreased performance in
conjunction with looking at SHAP values.  Features with a SHAP value closer
to 0 are less impactful on the model's prediction and can be removed."

This example trains the queue-time regressor, ranks all 33 Table II
features by permutation importance AND by KernelSHAP-style mean |SHAP|,
and prints both rankings side by side.

Run:  python examples/feature_importance.py   (~2 min)
"""

from __future__ import annotations

import numpy as np

from repro.core import TroutConfig
from repro.core.regressor import QueueTimeRegressor
from repro.core.training import build_feature_matrix
from repro.eval.report import format_table
from repro.explain import KernelShapExplainer, permutation_importance
from repro.workload import WorkloadConfig, generate_trace


def main() -> None:
    print("simulating + featurising...")
    trace, cluster = generate_trace(WorkloadConfig(n_jobs=20_000, seed=7, load=0.32))
    config = TroutConfig(seed=0)
    fm, _ = build_feature_matrix(trace.jobs, cluster, config)
    q = fm.queue_time_min
    long_rows = np.flatnonzero(q > config.cutoff_min)
    X, m = fm.X[long_rows], q[long_rows]

    print("training the regressor...")
    reg = QueueTimeRegressor(X.shape[1], config.regressor, seed=0).fit(X, m)

    def predict_log(Xq: np.ndarray) -> np.ndarray:
        return np.log1p(reg.predict_minutes(Xq))

    print("computing permutation importance (log-MSE metric)...")
    recent = X[-2000:]
    recent_y = np.log1p(m[-2000:])
    perm = permutation_importance(predict_log, recent, recent_y, n_repeats=3, seed=0)

    print("computing KernelSHAP attributions on a sample...")
    rng = np.random.default_rng(0)
    background = X[rng.choice(len(X), size=60, replace=False)]
    explainer = KernelShapExplainer(predict_log, background, n_samples=128, seed=0)
    sample = X[rng.choice(len(X), size=25, replace=False)]
    shap_imp = explainer.mean_abs_shap(sample)

    order = np.argsort(-perm["importances_mean"])
    rows = [
        [
            fm.names[j],
            perm["importances_mean"][j],
            shap_imp[j],
        ]
        for j in order[:15]
    ]
    print("\ntop 15 features:")
    print(
        format_table(
            ["feature", "permutation importance", "mean |SHAP|"],
            rows,
            float_fmt="{:.4f}",
        )
    )
    weak = [fm.names[j] for j in order[-5:]]
    print(f"\nnear-zero candidates for pruning (paper's workflow): {weak}")


if __name__ == "__main__":
    main()
