#!/usr/bin/env python
"""Prediction intervals for queue-time estimates (MC dropout).

§V: "it is difficult to diagnose what causes widely inaccurate guesses to
occur."  The standard mitigation is to attach uncertainty to every
estimate: this example trains the regressor, produces 80 % MC-dropout
intervals on holdout jobs, checks their empirical calibration at several
nominal levels, and prints the widest-interval jobs — exactly the
"seemingly easy-to-predict jobs" whose estimates deserve suspicion.

Run:  python examples/uncertainty.py   (~2 min)
"""

from __future__ import annotations

import numpy as np

from repro.core import TroutConfig
from repro.core.regressor import QueueTimeRegressor
from repro.core.training import build_feature_matrix
from repro.eval.calibration import coverage_curve, interval_coverage
from repro.eval.report import format_table
from repro.workload import WorkloadConfig, generate_trace


def main() -> None:
    print("simulating + featurising...")
    trace, cluster = generate_trace(WorkloadConfig(n_jobs=20_000, seed=7, load=0.32))
    config = TroutConfig(seed=0)
    fm, _ = build_feature_matrix(trace.jobs, cluster, config)
    q = fm.queue_time_min
    long_rows = np.flatnonzero(q > config.cutoff_min)
    cut = int(0.8 * len(long_rows))
    tr, te = long_rows[:cut], long_rows[cut:]

    print("training the regressor (dropout 0.2 for MC sampling)...")
    import dataclasses

    reg_cfg = dataclasses.replace(config.regressor, dropout=0.2)
    reg = QueueTimeRegressor(fm.X.shape[1], reg_cfg, seed=0).fit(fm.X[tr], q[tr])

    print("calibration at several nominal levels:")
    rows = [
        [f"{r['nominal']:.0%}", f"{r['coverage']:.1%}", f"{r['mean_width']:.0f}"]
        for r in coverage_curve(reg, fm.X[te], q[te], alphas=np.array([0.5, 0.2, 0.1]))
    ]
    print(format_table(["nominal coverage", "empirical", "mean width (min)"], rows))
    print("(MC dropout measures epistemic spread only — undercoverage on "
          "noisy targets is expected and itself diagnostic)")

    iv = reg.predict_interval(fm.X[te], n_samples=40, alpha=0.2)
    width = iv["upper"] - iv["lower"]
    worst = np.argsort(-width)[:5]
    print("\nleast certain holdout predictions (widest 80% intervals):")
    rows = [
        [
            f"{iv['lower'][i]:.0f} - {iv['upper'][i]:.0f}",
            f"{iv['median'][i]:.0f}",
            f"{q[te][i]:.0f}",
        ]
        for i in worst
    ]
    print(format_table(["interval (min)", "median pred", "actual"], rows))
    stats = interval_coverage(q[te], iv["lower"], iv["upper"])
    print(
        f"\n80% interval: empirical coverage {stats['coverage']:.1%}, "
        f"misses split {stats['below']:.1%} below / {stats['above']:.1%} above"
    )


if __name__ == "__main__":
    main()
