#!/usr/bin/env python
"""Quickstart: simulate a cluster, train TROUT, predict queue times.

The five-minute tour of the public API:

1. generate a synthetic Anvil-like accounting trace (the stand-in for the
   paper's 3.8 M-job Slurm history),
2. engineer the Table II features (interval trees + runtime model),
3. train the hierarchical model (quick-start classifier + queue-time
   regressor),
4. ask it about some jobs, Algorithm-1 style.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import TroutConfig, train_trout
from repro.core.training import build_feature_matrix
from repro.workload import WorkloadConfig, generate_trace


def main() -> None:
    # 1. A miniature Anvil under bursty load.  ~20 s on a laptop.
    print("simulating workload...")
    trace, cluster = generate_trace(
        WorkloadConfig(n_jobs=20_000, seed=7, load=0.32, cluster_scale=0.05)
    )
    q = trace.queue_time_min
    print(
        f"  {len(trace.jobs)} jobs, {100 * np.mean(q < 10):.1f}% queued under "
        f"10 min (paper: 87%), longest wait {q.max() / 60:.1f} h"
    )

    # 2. Table II features: partition snapshots via interval trees, user
    #    history, static specs, and the RF runtime model's predictions.
    print("engineering features...")
    fm, runtime_model = build_feature_matrix(trace.jobs, cluster)
    print(f"  feature matrix: {fm.X.shape[0]} jobs x {fm.X.shape[1]} features")

    # 3. Train the hierarchy on the past 80 %, evaluate on the recent 20 %.
    print("training TROUT...")
    result = train_trout(fm, TroutConfig(seed=0))
    print(f"  classifier holdout accuracy: {result.classifier_accuracy:.4f}")
    print(f"  regressor MAPE on long-wait holdout jobs: "
          f"{result.regression_mape_holdout:.1f}%")

    # 4. Algorithm 1 on the most recent jobs.
    print("\npredictions for the five most recent jobs:")
    for job_row, msg, actual in zip(
        trace.jobs.records[-5:],
        result.model.predict_messages(fm.X[-5:]),
        q[-5:],
    ):
        part = trace.jobs.partition_names[int(job_row["partition"])]
        print(
            f"  job {int(job_row['job_id'])} ({part}, "
            f"{int(job_row['req_cpus'])} CPUs): {msg}   "
            f"[actual: {actual:.1f} min]"
        )


if __name__ == "__main__":
    main()
