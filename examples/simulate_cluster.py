#!/usr/bin/env python
"""Drive the Slurm-like scheduler substrate directly.

Shows the simulation layer on its own: build a custom cluster, craft a
handful of submissions by hand, run the event loop, and read the
accounting trace back — including watching EASY backfill let a small short
job jump a blocked wide job.

Run:  python examples/simulate_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.slurm.accounting import format_sacct
from repro.slurm.resources import Cluster, NodePool, Partition
from repro.slurm.simulator import SUBMISSION_DTYPE, Simulator


def main() -> None:
    # A 4-node machine with one partition.
    pool = NodePool("cpu", n_nodes=4, cpus_per_node=64, mem_gb_per_node=256.0)
    cluster = Cluster("mini", [pool], [Partition("batch", pool="cpu")])

    # Hand-crafted story:
    #   job 1 grabs most of the machine for ~2 h;
    #   job 2 (wide) arrives and blocks — EASY reserves it a start slot;
    #   job 3 (small, short) arrives last but backfills immediately;
    #   job 4 (small, LONG) cannot backfill without delaying job 2.
    rows = [
        # (job, user, cpus, mem, submit_s, timelimit_min, runtime_min)
        (1, 0, 192, 600.0, 0.0, 120.0, 120.0),
        (2, 1, 256, 900.0, 600.0, 60.0, 45.0),  # whole machine: no spare
        (3, 2, 32, 64.0, 660.0, 30.0, 25.0),  # ends before the reservation
        (4, 3, 64, 128.0, 661.0, 600.0, 600.0),  # would overrun it
    ]
    subs = np.zeros(len(rows), dtype=SUBMISSION_DTYPE)
    for i, (jid, user, cpus, mem, submit, tl, rt) in enumerate(rows):
        subs[i]["job_id"] = jid
        subs[i]["user_id"] = user
        subs[i]["req_cpus"] = cpus
        subs[i]["req_mem_gb"] = mem
        subs[i]["req_nodes"] = 1
        subs[i]["submit_time"] = subs[i]["eligible_time"] = submit
        subs[i]["timelimit_min"] = tl
        subs[i]["runtime_min"] = rt
        subs[i]["qos"] = 1

    result = Simulator(cluster, n_users=4).run(subs)
    print("accounting trace (sacct-style):")
    print(format_sacct(result.jobs))

    rec = result.jobs.sort_by("job_id").records
    queue = result.jobs.sort_by("job_id").queue_time_min
    print("\nwhat happened:")
    print(f"  job 1 started instantly (queue {queue[0]:.0f} min)")
    print(
        f"  job 2 (wide) blocked until job 1 released CPUs "
        f"(queue {queue[1]:.0f} min)"
    )
    print(
        f"  job 3 backfilled ahead of job 2 despite arriving later "
        f"(queue {queue[2]:.0f} min)"
    )
    print(
        f"  job 4's 10 h limit would overrun job 2's whole-machine "
        f"reservation, so it waited behind it (queue {queue[3]:.0f} min)"
    )
    assert queue[2] < queue[1], "job 3 should have backfilled"
    assert rec["start_time"][3] >= rec["start_time"][1], "job 4 must not delay job 2"


if __name__ == "__main__":
    main()
