#!/usr/bin/env python
"""Online learning on a drifting cluster (§V future work, implemented).

Simulates two consecutive workload regimes (the second one more congested,
as if demand grew), trains TROUT on the first, then streams the second
regime's completed jobs through :class:`repro.core.online.OnlineTrout` —
comparing the frozen model's prequential accuracy with the refreshing one.

Run:  python examples/online_learning.py   (~2 min)
"""

from __future__ import annotations

import numpy as np

from repro.core import TroutConfig, train_trout
from repro.core.online import OnlineConfig, OnlineTrout
from repro.core.training import build_feature_matrix
from repro.workload import WorkloadConfig, generate_trace


def stream_accuracy(model_like, X, minutes, cutoff=10.0):
    truth = (minutes > cutoff).astype(float)
    pred = model_like.classifier.predict(X).astype(float)
    return float(np.mean(pred == truth))


def main() -> None:
    print("regime A: moderate load (training data)...")
    trace_a, cluster = generate_trace(
        WorkloadConfig(n_jobs=15_000, seed=7, load=0.30)
    )
    config = TroutConfig(seed=0)
    fm_a, _ = build_feature_matrix(trace_a.jobs, cluster, config)
    frozen = train_trout(fm_a, config).model
    online_base = train_trout(fm_a, config).model  # independent copy

    print("regime B: demand grows (load 0.55) — the distribution drifts...")
    trace_b, _ = generate_trace(
        WorkloadConfig(n_jobs=15_000, seed=8, load=0.55), cluster=cluster
    )
    fm_b, _ = build_feature_matrix(trace_b.jobs, cluster, config)
    Xb, mb = fm_b.X, fm_b.queue_time_min

    online = OnlineTrout(
        online_base,
        OnlineConfig(window=8000, refresh_every=2000, epochs=3, lr=3e-4),
    )

    print("\nstreaming regime-B jobs in batches of 2000:")
    chunk = 2000
    for lo in range(0, len(Xb) - chunk, chunk):
        X_batch, m_batch = Xb[lo : lo + chunk], mb[lo : lo + chunk]
        acc_frozen = stream_accuracy(frozen, X_batch, m_batch)
        acc_online = stream_accuracy(online.model, X_batch, m_batch)
        online.observe(X_batch, m_batch)  # scores prequentially, refreshes
        print(
            f"  jobs {lo:>6}-{lo + chunk:<6}  frozen acc {acc_frozen:.3f}   "
            f"online acc {acc_online:.3f}   (refreshes so far: {online.n_refreshes})"
        )

    print(
        f"\nstream totals: online classifier accuracy "
        f"{online.drift.classifier_accuracy:.3f}, regressor MAPE "
        f"{online.drift.regressor_mape:.0f}% over {online.drift.n_seen} jobs"
    )
    print("the refreshing model should hold or recover accuracy as the "
          "regime departs from the training distribution.")


if __name__ == "__main__":
    main()
