#!/usr/bin/env python
"""Hyperparameter search with the built-in Optuna substitute (§III).

Runs the same define-by-run TPE study the training pipeline uses
internally, but standalone and verbose: every trial's architecture and
validation MAPE is printed, then the winner is refit and scored on a
held-out window.

Run:  python examples/hpo_search.py   (~1 min)
"""

from __future__ import annotations

import numpy as np

from repro.core import TroutConfig
from repro.core.tuning import TuningConfig, tune_regressor
from repro.core.training import build_feature_matrix
from repro.eval.metrics import mean_absolute_percentage_error, pearson_r
from repro.eval.report import format_table
from repro.workload import WorkloadConfig, generate_trace


def main() -> None:
    print("simulating + featurising...")
    trace, cluster = generate_trace(WorkloadConfig(n_jobs=20_000, seed=7, load=0.32))
    config = TroutConfig(seed=0)
    fm, _ = build_feature_matrix(trace.jobs, cluster, config)
    q = fm.queue_time_min
    long_rows = np.flatnonzero(q > config.cutoff_min)
    # Time-ordered: tune on the earlier 80 %, test on the final 20 %.
    cut = int(0.8 * len(long_rows))
    tr, te = long_rows[:cut], long_rows[cut:]

    print(f"tuning on {len(tr)} long-wait jobs (TPE, 15 trials)...")
    model, study = tune_regressor(
        fm.X[tr], q[tr], TuningConfig(n_trials=15, seed=0)
    )

    rows = [
        [
            t.number,
            t.params["h1"],
            t.params["depth"],
            f"{t.params['lr']:.2e}",
            f"{t.params['dropout']:.2f}",
            t.value,
        ]
        for t in study.completed_trials
    ]
    print(format_table(["trial", "width", "depth", "lr", "dropout", "val MAPE %"], rows))
    print(f"\nbest: {study.best_params}  (val MAPE {study.best_value:.1f}%)")

    pred = model.predict_minutes(fm.X[te])
    print(
        f"held-out window: MAPE {mean_absolute_percentage_error(q[te], pred):.1f}%, "
        f"Pearson r {pearson_r(q[te], pred):.3f}"
    )


if __name__ == "__main__":
    main()
