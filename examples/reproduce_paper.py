#!/usr/bin/env python
"""Regenerate the paper's headline numbers in one run.

A pytest-free version of the benchmark suite's core path, for readers who
want the story in one script:

  Table I statistics → Fig. 2 queue-time shape → classifier accuracy (§IV)
  → regression fold MAPEs (§IV / Figs. 4-5) → model comparison (Figs. 6-9)

Scale with ``--n-jobs`` (default 30000, ~4 min; the benchmarks default to
60000 with per-fold HPO for the full treatment).

Run:  python examples/reproduce_paper.py [--n-jobs N] [--tune]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import TroutConfig, TuningConfig, run_regression_cv, train_trout
from repro.core.training import build_feature_matrix
from repro.data.stats import format_statistics_table, job_statistics
from repro.eval.comparison import compare_models
from repro.eval.report import format_table
from repro.workload import WorkloadConfig, generate_trace


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--n-jobs", type=int, default=30_000)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--tune", action="store_true",
                    help="per-fold TPE tuning of the NN (the paper's Optuna step)")
    args = ap.parse_args()

    print("=" * 70)
    print("1. synthetic Anvil trace (substitutes the proprietary 3.8M-job log)")
    trace, cluster = generate_trace(
        WorkloadConfig(n_jobs=args.n_jobs, seed=args.seed, load=0.32)
    )
    print(format_statistics_table(job_statistics(trace.jobs)))
    q = trace.queue_time_min
    print(
        f"\nqueue-time shape (Fig. 2): {100 * np.mean(q < 10):.1f}% under "
        f"10 min (paper: 87%), max {q.max() / 60:.1f} h"
    )

    print("\n" + "=" * 70)
    print("2. Table II features + hierarchical training")
    config = TroutConfig(seed=0)
    fm, _ = build_feature_matrix(trace.jobs, cluster, config)
    trained = train_trout(fm, config)
    print(
        f"classifier accuracy on recent 20% holdout: "
        f"{trained.classifier_accuracy:.4f}  (paper: 0.9048)"
    )
    print(
        f"  per class: quick {trained.classifier_accuracy_quick:.4f}, "
        f"long {trained.classifier_accuracy_long:.4f}"
    )

    print("\n" + "=" * 70)
    print("3. time-series CV of the regressor (§IV, Figs. 4-5)")
    tuning = TuningConfig(n_trials=15, seed=0) if args.tune else None
    cv = run_regression_cv(fm, config, tuning=tuning)
    rows = [[f.fold, f.mape, f.pearson, f.within_100] for f in cv.folds]
    print(format_table(["fold", "MAPE %", "pearson r", "within 100%"], rows))
    print(
        f"last-3 mean MAPE: {cv.mape_last3:.1f}%  (paper: 97.57%)   "
        f"final-fold r: {cv.final_pearson:.3f}  (paper: 0.7532)"
    )

    print("\n" + "=" * 70)
    print("4. model comparison on folds 4 & 5 (Figs. 6-9)")
    comparison = compare_models(fm, config, folds=[4, 5], tuning=tuning)
    for fold in (4, 5):
        mape = comparison.series("mape", fold)
        within = comparison.series("within_100", fold)
        rows = [[m, mape[m], 100 * within[m]] for m in sorted(mape, key=mape.get)]
        print(f"\nfold {fold}:")
        print(format_table(["model", "avg % error", "% within 100%"], rows))
    print(
        "\npaper: the neural network wins on average percent error; with "
        "--tune it gets the Optuna treatment that makes that reliable here."
    )


if __name__ == "__main__":
    main()
