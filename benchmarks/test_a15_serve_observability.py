"""A15 — serving-path observability overhead gate.

The request-observability contract (README "Serving", DESIGN.md §11):
per-request tracing, the structured event log, and the prediction audit
trail are cheap enough to leave on in production — a fully observed
serving path (spans + events + audit trail on disk) stays within 5 % of
the same path with no audit trail and no event sink, and under
``REPRO_TELEMETRY=0`` the whole layer nulls itself to within ~1 %.

The probe drives :meth:`PredictionService.handle_predict` directly —
request parsing, span, batcher round-trip, audit append — with a
zero-weight model and ``max_wait_ms=0``, so the measured time is
dominated by the serving machinery the observability rides on, not by
model arithmetic or socket overhead.  Medians over several repetitions,
with an absolute slack so sub-millisecond jitter cannot fail the ratio.
"""

from __future__ import annotations

import json
import statistics
import time

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.classifier import QuickStartClassifier
from repro.core.config import ClassifierConfig, RegressorConfig
from repro.core.hierarchical import TroutModel
from repro.core.regressor import QueueTimeRegressor
from repro.eval.report import format_table
from repro.features.names import FEATURE_NAMES
from repro.nn import Dense, Sequential
from repro.obs import metrics, tracing
from repro.obs.events import get_event_log, reset_event_log
from repro.serve import LoadedModel, PredictionService, ServeConfig
from repro.serve.audit import AuditTrail
from repro.utils.rng import default_rng

N_FEATURES = len(FEATURE_NAMES)
REQUESTS = 500
REPS = 5
MAX_OBSERVED_OVERHEAD = 1.05
MAX_DISABLED_OVERHEAD = 1.01
#: Below this absolute delta the ratio gate is vacuous — at ~500 requests
#: per rep, 50 ms of slack is 100 µs/request of allowed jitter.
ABS_SLACK_S = 0.05


def _zero_model() -> TroutModel:
    """Constant-output hierarchy: serving cost without model cost."""

    def zero_net(n_in: int) -> Sequential:
        layer = Dense(n_in, 1, seed=0)
        layer.params[0][:] = 0.0
        layer.params[1][:] = 0.0
        return Sequential([layer])

    clf = QuickStartClassifier(N_FEATURES, ClassifierConfig(threshold=0.5))
    clf.net_ = zero_net(N_FEATURES)
    clf._scaler.mean_ = np.zeros(N_FEATURES)
    clf._scaler.scale_ = np.ones(N_FEATURES)
    reg = QueueTimeRegressor(N_FEATURES, RegressorConfig(log_target=False))
    reg.net_ = zero_net(N_FEATURES)
    reg._scaler.mean_ = np.zeros(N_FEATURES)
    reg._scaler.scale_ = np.ones(N_FEATURES)
    return TroutModel(
        classifier=clf,
        regressor=reg,
        cutoff_min=10.0,
        feature_names=FEATURE_NAMES,
    )


def _service(audit: AuditTrail | None = None) -> PredictionService:
    loaded = LoadedModel(
        model=_zero_model(), version=1, fingerprint="bench", partitions=()
    )
    return PredictionService(
        loaded,
        ServeConfig(max_batch=8, max_wait_ms=0.0, request_timeout_s=30.0),
        audit=audit,
    )


def _drive(service: PredictionService, bodies: list[bytes]) -> float:
    t0 = time.perf_counter()
    for body in bodies:
        resp = service.handle_predict(body)
        assert resp.status == 200, resp.payload
    return time.perf_counter() - t0


def _median_runtime(service: PredictionService, bodies: list[bytes]) -> float:
    return statistics.median(_drive(service, bodies) for _ in range(REPS))


def test_a15_serve_observability_overhead(benchmark, tmp_path):
    rng = default_rng(0)
    bodies = [
        json.dumps({"features": [float(v) for v in rng.normal(size=N_FEATURES)]}).encode()
        for _ in range(REQUESTS)
    ]

    def measure(observed: bool, enabled: bool) -> float:
        metrics.set_enabled(enabled)
        metrics.get_registry().reset()
        tracing.reset()
        reset_event_log()
        audit = None
        if observed:
            audit = AuditTrail(tmp_path / f"audit-{enabled}.jsonl")
            get_event_log().configure_file(
                tmp_path / f"events-{enabled}.jsonl", sink_level="info"
            )
        service = _service(audit=audit)
        try:
            _drive(service, bodies[:50])  # warm the path outside timing
            return _median_runtime(service, bodies)
        finally:
            service.close()
            if audit is not None:
                audit.close()
            reset_event_log()

    try:
        t_plain = measure(observed=False, enabled=True)
        t_observed = measure(observed=True, enabled=True)
        t_disabled = measure(observed=True, enabled=False)
    finally:
        metrics.set_enabled(True)
        metrics.get_registry().reset()
        tracing.reset()
        reset_event_log()

    ratio_obs = t_observed / t_plain if t_plain > 0 else 1.0
    ratio_off = t_disabled / t_plain if t_plain > 0 else 1.0
    emit(
        "a15_serve_observability",
        format_table(
            ["requests", "plain (s)", "observed (s)", "telemetry=0 (s)",
             "obs ratio", "off ratio"],
            [[REQUESTS, t_plain, t_observed, t_disabled, ratio_obs, ratio_off]],
            float_fmt="{:.4f}",
        ),
    )
    service = _service()
    try:
        once(benchmark, lambda: _drive(service, bodies))
    finally:
        service.close()

    # Fully observed serving stays within the 5 % envelope ...
    assert (
        ratio_obs <= MAX_OBSERVED_OVERHEAD
        or (t_observed - t_plain) <= ABS_SLACK_S
    ), (t_plain, t_observed)
    # ... and REPRO_TELEMETRY=0 nulls the whole layer.
    assert (
        ratio_off <= MAX_DISABLED_OVERHEAD
        or (t_disabled - t_plain) <= ABS_SLACK_S
    ), (t_plain, t_disabled)
