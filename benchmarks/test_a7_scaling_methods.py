"""A7 — §III: scaling-method comparison.

"To manage the highly skewed nature of the data and reduce the input
scale, a natural log transformation was applied to all features. …
Scaling methods, such as min-max scaling or box-cox scaling, were tested
but found not to provide noticeable benefits in performance."  The bench
trains the identical regressor on the raw Table II matrix under four
treatments — none, log1p (the paper's choice), log1p+min-max, Box-Cox —
and reports late-fold MAPE.  (The regressor standardises internally, so
the treatments differ in their handling of skew, exactly the §III
question.)
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.regressor import QueueTimeRegressor
from repro.data.splits import TimeSeriesSplit
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.report import format_table
from repro.features.pipeline import FeaturePipeline
from repro.features.transforms import (
    BoxCoxScaler,
    IdentityTransform,
    Log1pTransform,
    MinMaxScaler,
    TransformChain,
)


def test_a7_scaling_ablation(benchmark, bench_trace, bench_fm, bench_config):
    result, cluster = bench_trace
    fm_log, runtime = bench_fm
    # Raw (un-logged) matrix with the same runtime-model predictions.
    pred = runtime.predict_minutes(result.jobs)
    raw = FeaturePipeline(cluster, log_transform=False).compute(
        result.jobs, pred_runtime_min=pred
    )
    q = raw.queue_time_min
    splitter = TimeSeriesSplit(bench_config.n_splits, bench_config.test_fraction)
    train_idx, test_idx = list(splitter.split(len(raw)))[-1]
    tr = train_idx[q[train_idx] > bench_config.cutoff_min]
    te = test_idx[q[test_idx] > bench_config.cutoff_min]

    treatments = {
        "none": IdentityTransform(),
        "log1p (paper)": Log1pTransform(),
        "log1p + min-max": TransformChain([Log1pTransform(), MinMaxScaler()]),
        "box-cox": BoxCoxScaler(),
    }

    def sweep():
        out = {}
        for name, tf in treatments.items():
            Xtr = tf.fit(raw.X[tr]).transform(raw.X[tr])
            try:
                Xte = tf.transform(raw.X[te])
            except ValueError:
                # Box-Cox cannot transform test values below the training
                # minimum; shift-clip into range (deployment fallback).
                Xte = tf.transform(
                    np.maximum(raw.X[te], raw.X[tr].min(axis=0))
                )
            reg = QueueTimeRegressor(Xtr.shape[1], bench_config.regressor, seed=7)
            reg.fit(Xtr, q[tr])
            out[name] = mean_absolute_percentage_error(
                q[te], reg.predict_minutes(Xte)
            )
        return out

    results = once(benchmark, sweep)
    rows = sorted(results.items(), key=lambda kv: kv[1])
    emit(
        "a7_scaling_methods",
        "\n".join(
            [
                format_table(["feature treatment", "fold-5 MAPE %"], rows),
                "paper: log transform chosen; min-max and Box-Cox gave no "
                "noticeable benefit",
            ]
        ),
    )

    # Shape: the log-based treatments sit within noise of each other and
    # the extra scalers give no decisive win over plain log1p.
    log_mape = results["log1p (paper)"]
    assert np.isfinite(log_mape)
    assert results["log1p + min-max"] > 0.5 * log_mape
    assert results["box-cox"] > 0.5 * log_mape