"""A6 — §III: which feature groups carry the signal.

The paper reports that "the most impactful features included … the amount
of CPUs being used in running jobs by partition, the memory requested of
jobs in that partition's queue …, the time limit of the requested job, and
the priority of the requested job", with other combinations "found to
detract".  This ablation drops each Table II feature *group* in turn
(columns zeroed so architecture stays fixed) and measures the late-fold
MAPE penalty — the group-level version of the paper's SHAP-guided
selection.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.regressor import QueueTimeRegressor
from repro.data.splits import TimeSeriesSplit
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.report import format_table
from repro.features.names import FEATURE_GROUPS, FEATURE_NAMES


def test_a6_group_knockouts(benchmark, bench_fm, bench_config):
    fm, _ = bench_fm
    q = fm.queue_time_min
    splitter = TimeSeriesSplit(bench_config.n_splits, bench_config.test_fraction)
    folds = list(splitter.split(len(fm)))
    train_idx, test_idx = folds[-1]
    tr = train_idx[q[train_idx] > bench_config.cutoff_min]
    te = test_idx[q[test_idx] > bench_config.cutoff_min]
    name_to_col = {n: i for i, n in enumerate(FEATURE_NAMES)}

    def evaluate(drop_group: str | None) -> float:
        X = fm.X.copy()
        if drop_group is not None:
            for n in FEATURE_GROUPS[drop_group]:
                X[:, name_to_col[n]] = 0.0
        reg = QueueTimeRegressor(X.shape[1], bench_config.regressor, seed=5)
        reg.fit(X[tr], q[tr])
        return mean_absolute_percentage_error(q[te], reg.predict_minutes(X[te]))

    def sweep():
        out = {"(full model)": evaluate(None)}
        for group in FEATURE_GROUPS:
            out[f"- {group}"] = evaluate(group)
        return out

    results = once(benchmark, sweep)

    base = results["(full model)"]
    rows = [
        [name, mape, mape - base]
        for name, mape in sorted(results.items(), key=lambda kv: kv[1])
    ]
    emit(
        "a6_feature_groups",
        "\n".join(
            [
                format_table(
                    ["variant (group removed)", "fold-5 MAPE %", "Δ vs full"],
                    rows,
                ),
                "paper: partition running/queue aggregates, timelimit and "
                "priority were the most impactful features",
            ]
        ),
    )

    # Shape: at least one knockout hurts clearly — the engineered state
    # features are load-bearing, not decorative.
    worst = max(v for k, v in results.items() if k != "(full model)")
    assert worst > base * 1.05, results
    assert np.isfinite(base)
