"""A14 — serve micro-batching gate.

The serving contract (README "Serving", DESIGN.md §10), probed in the two
regimes that matter:

- **saturated** — the pending queue never empties, so every batch fills
  to ``max_batch`` without touching the coalescing window.  This is the
  regime micro-batching exists for, and here it must sustain at least
  :data:`MIN_SPEEDUP`× the single-request (``max_batch=1``) throughput.
- **closed loop** — N clients each submit-then-wait, so the window *is*
  exercised (a batch closes when all in-flight requests joined or the
  window expires).  Here the p99 request latency may exceed the
  single-request p99 by at most ``max_wait``: the only latency batching
  is allowed to add is the wait for company.

The probe drives the :class:`~repro.serve.batcher.MicroBatcher` through
the same predict closure the HTTP layer uses, with a production-shaped
(two hidden layers) model, so it measures the batching economics rather
than socket overhead; the HTTP path itself is covered end-to-end by
``tests/serve``.
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.classifier import QuickStartClassifier
from repro.core.config import ClassifierConfig, RegressorConfig
from repro.core.hierarchical import TroutModel
from repro.core.regressor import QueueTimeRegressor
from repro.eval.report import format_table
from repro.features.names import FEATURE_NAMES
from repro.nn import Activation, Dense, Sequential
from repro.serve import MicroBatcher
from repro.utils.rng import default_rng

N_FEATURES = len(FEATURE_NAMES)
HIDDEN = 512
MIN_SPEEDUP = 3.0

#: Saturated-regime knobs: enough pre-submitted rows that the queue never
#: runs dry mid-measurement, and the production default batch cap.
SATURATED_REQUESTS = 4096
MAX_BATCH = 32

#: Closed-loop knobs: the batch cap matches the offered concurrency — a
#: larger cap could never fill and every batch would wait out the whole
#: window — and the window is short enough that a straggler costs little.
N_THREADS = 8
PER_THREAD = 250
LOOP_BATCH = N_THREADS
MAX_WAIT_S = 0.002


def _net(rng, hidden: int) -> Sequential:
    return Sequential(
        [
            Dense(N_FEATURES, hidden, seed=rng),
            Activation("elu"),
            Dense(hidden, hidden, seed=rng),
            Activation("elu"),
            Dense(hidden, 1, seed=rng),
        ]
    )


def _production_shaped_model(seed: int = 0) -> TroutModel:
    rng = default_rng(seed)
    clf = QuickStartClassifier(N_FEATURES, ClassifierConfig(threshold=0.5))
    clf.net_ = _net(rng, HIDDEN)
    clf._scaler.mean_ = np.zeros(N_FEATURES)
    clf._scaler.scale_ = np.ones(N_FEATURES)
    reg = QueueTimeRegressor(N_FEATURES, RegressorConfig(log_target=False))
    reg.net_ = _net(rng, HIDDEN)
    reg._scaler.mean_ = np.zeros(N_FEATURES)
    reg._scaler.scale_ = np.ones(N_FEATURES)
    return TroutModel(
        classifier=clf,
        regressor=reg,
        cutoff_min=10.0,
        feature_names=FEATURE_NAMES,
    )


def _saturated_wall(batcher: MicroBatcher, rows: np.ndarray) -> float:
    """Pre-submit every request, then wait for all of them; wall seconds."""
    t0 = perf_counter()
    tickets = [
        batcher.submit(rows[i % len(rows)]) for i in range(SATURATED_REQUESTS)
    ]
    for ticket in tickets:
        ticket.wait(300.0)
    return perf_counter() - t0


def _closed_loop(batcher: MicroBatcher, rows: np.ndarray) -> list[float]:
    """N_THREADS submit-then-wait clients; per-request latencies."""
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(N_THREADS)
    errors: list[BaseException] = []

    def client(t: int) -> None:
        mine = []
        try:
            barrier.wait(timeout=60)
            for c in range(PER_THREAD):
                row = rows[(t * PER_THREAD + c) % len(rows)]
                t0 = perf_counter()
                batcher.submit(row).wait(60.0)
                mine.append(perf_counter() - t0)
        except BaseException as exc:
            errors.append(exc)
            raise
        finally:
            with lock:
                latencies.extend(mine)

    threads = [
        threading.Thread(target=client, args=(t,), daemon=True)
        for t in range(N_THREADS)
    ]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=300)
    if errors:
        raise errors[0]
    assert len(latencies) == N_THREADS * PER_THREAD
    return latencies


def test_a14_batching_throughput_and_latency(benchmark):
    model = _production_shaped_model()
    rng = default_rng(99)
    rows = rng.normal(size=(512, N_FEATURES))

    def predict_fn(block):
        return model.predict(block)

    predict_fn(rows[:MAX_BATCH])  # warm BLAS/import paths outside timing

    def batcher(max_batch: int, max_wait_s: float) -> MicroBatcher:
        return MicroBatcher(
            predict_fn,
            n_features=N_FEATURES,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            queue_depth=SATURATED_REQUESTS,
        )

    def measure(saturated_batch: int, loop_batch: int, max_wait_s: float):
        b = batcher(saturated_batch, max_wait_s)
        try:
            wall = _saturated_wall(b, rows)
        finally:
            b.close()
        b = batcher(loop_batch, max_wait_s)
        try:
            latencies = _closed_loop(b, rows)
        finally:
            b.close()
        return wall, latencies

    wall_1, lat_1 = measure(1, 1, max_wait_s=0.0)
    wall_b, lat_b = once(
        benchmark, lambda: measure(MAX_BATCH, LOOP_BATCH, MAX_WAIT_S)
    )

    rps_1 = SATURATED_REQUESTS / wall_1
    rps_b = SATURATED_REQUESTS / wall_b
    speedup = rps_b / rps_1
    p99_1 = float(np.percentile(lat_1, 99))
    p99_b = float(np.percentile(lat_b, 99))
    added_p99 = p99_b - p99_1

    emit(
        "a14_serve_batching",
        format_table(
            ["mode", "saturated req/s", "loop p50 ms", "loop p99 ms"],
            [
                [
                    "max_batch=1",
                    rps_1,
                    float(np.percentile(lat_1, 50)) * 1e3,
                    p99_1 * 1e3,
                ],
                [
                    f"max_batch={MAX_BATCH}/{LOOP_BATCH}",
                    rps_b,
                    float(np.percentile(lat_b, 50)) * 1e3,
                    p99_b * 1e3,
                ],
                ["delta", speedup, 0.0, added_p99 * 1e3],
            ],
            float_fmt="{:.3f}",
        ),
    )

    assert speedup >= MIN_SPEEDUP, (rps_1, rps_b)
    # Batching may only add its coalescing window on top of the
    # single-request tail — under concurrent load it usually *removes*
    # queueing delay, so the added p99 is typically negative.
    assert added_p99 <= MAX_WAIT_S, (p99_1, p99_b)
