"""F6/F7 — Figs. 6 & 7: average percent error by model, folds 4 and 5.

§IV: "Our neural network model outperformed the other types of models
across all splits … there did not appear to be a significant trend between
which of the other three models performed best."  The bench trains the NN,
XGBoost-style GBT, random forest and kNN on identical fold data and prints
the per-model average percent error bars for both folds.
"""

from benchmarks.conftest import emit, once
from repro.eval.report import format_table


def test_fig6_7_average_percent_error(benchmark, bench_comparison):
    comparison = once(benchmark, lambda: bench_comparison)

    lines = []
    for fold in (4, 5):
        series = comparison.series("mape", fold)
        rows = [[m, v] for m, v in sorted(series.items(), key=lambda kv: kv[1])]
        lines.append(f"fold {fold} (Fig. {'6' if fold == 4 else '7'}):")
        lines.append(format_table(["model", "avg percent error"], rows))
        lines.append("")
    lines.append("paper: neural net lowest on every fold")
    emit("fig6_7_model_comparison", "\n".join(lines))

    # Shape: the NN wins (lowest average percent error) on both folds.
    for fold in (4, 5):
        assert comparison.winner("mape", fold) == "neural_net", (
            f"fold {fold}: {comparison.series('mape', fold)}"
        )
