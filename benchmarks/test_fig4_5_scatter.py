"""F4/F5 — Figs. 4 & 5: predicted-vs-actual scatter, folds 4 and 5.

§IV: "a correlation of Pearson's r = 0.7532 for the final split (Fig. 5),
as well as a visibly linear trend in the previous split (Fig. 4)".  The
bench regenerates both folds' scatter series and reports Pearson r; the
shape check is a clearly positive correlation on the data-rich final folds.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.metrics import pearson_r
from repro.eval.report import ascii_scatter, scatter_series


def test_fig4_5_scatter_and_pearson(benchmark, bench_cv):
    folds = {f.fold: f for f in bench_cv.folds}
    f4, f5 = folds[4], folds[5]

    series5 = once(benchmark, lambda: scatter_series(f5.y_true, f5.y_pred))

    lines = []
    for label, f in (("fold 4 (Fig. 4)", f4), ("fold 5 (Fig. 5)", f5)):
        lines.append(
            f"{label}: n={f.n_test}  pearson r={f.pearson:.4f}  mape={f.mape:.1f}%"
        )
    lines.append("paper: r = 0.7532 on the final fold")
    lines.append("")
    lines.append("fold 5 predicted-vs-actual (Fig. 5), log-log:")
    lines.append(
        ascii_scatter(series5["actual"], series5["predicted"], width=64, height=18)
    )
    emit("fig4_5_scatter", "\n".join(lines))

    # Shape: clearly positive correlation on the late, data-rich folds.
    assert max(f4.pearson, f5.pearson) > 0.3
    assert min(f4.pearson, f5.pearson) > -0.2
    # Series align with the fold's metric.
    np.testing.assert_allclose(pearson_r(f5.y_true, f5.y_pred), f5.pearson)
