"""A11 — histogram vs exact split search for the ensemble trees.

The histogram path exists purely for speed, so this bench measures the
trade at the runtime model's real operating point: the A4-scale trace
(``REPRO_BENCH_JOBS`` jobs) through :class:`RuntimePredictor` with the
production :class:`RuntimeModelConfig` (30 trees, depth 12).  Gates:

- ``hist`` must fit the forest at least 5× faster than ``exact``;
- its holdout MAPE must stay within 2 % relative of ``exact``'s.

A gradient-boosting row is reported for context (the same binned matrix
serves both ensembles) but only the forest — the model the pipeline
actually trains at this scale — is gated.
"""

import time

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.config import RuntimeModelConfig
from repro.core.runtime_model import RuntimePredictor
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.report import format_table
from repro.ml.boosting import GradientBoostingRegressor


def test_a11_tree_hist(benchmark, bench_trace):
    result, _ = bench_trace
    jobs = result.jobs
    n = len(jobs) // 2
    train, test = jobs[:n], jobs[n:]
    keep = test.runtime_min >= 1.0
    actual = test.runtime_min[keep]

    def run():
        out = {}
        for method in ("exact", "hist"):
            t0 = time.perf_counter()
            rt = RuntimePredictor(
                RuntimeModelConfig(tree_method=method), seed=0
            ).fit(train)
            fit_s = time.perf_counter() - t0
            mape = mean_absolute_percentage_error(
                actual, rt.predict_minutes(test)[keep]
            )
            out[method] = (fit_s, mape)
        return out

    res = once(benchmark, run)

    # Context row: the boosting ensemble on the same design matrix.
    Xb = RuntimePredictor(RuntimeModelConfig(), seed=0).design_matrix(train)
    yb = np.log1p(np.maximum(train.runtime_min, 0.0))
    gb = {}
    for method in ("exact", "hist"):
        t0 = time.perf_counter()
        GradientBoostingRegressor(
            n_estimators=30, max_depth=6, seed=0, tree_method=method
        ).fit(Xb, yb)
        gb[method] = time.perf_counter() - t0

    speedup = res["exact"][0] / res["hist"][0]
    rel = res["hist"][1] / res["exact"][1] - 1.0
    emit(
        "a11_tree_hist",
        "\n".join(
            [
                format_table(
                    ["model / split search", "fit (s)", "holdout MAPE (%)"],
                    [
                        ["forest, exact", res["exact"][0], res["exact"][1]],
                        ["forest, hist", res["hist"][0], res["hist"][1]],
                        ["gbdt, exact", gb["exact"], "-"],
                        ["gbdt, hist", gb["hist"], "-"],
                    ],
                    float_fmt="{:.3f}",
                ),
                f"forest speedup (exact/hist): {speedup:.2f}x   "
                f"gbdt: {gb['exact'] / gb['hist']:.2f}x",
                f"hist MAPE delta vs exact: {100 * rel:+.2f}% relative",
            ]
        ),
    )

    assert speedup >= 5.0
    assert res["hist"][1] <= res["exact"][1] * 1.02
