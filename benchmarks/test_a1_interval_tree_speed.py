"""A1 — §V claim: interval trees accelerate overlap feature engineering.

"Using interval trees offers an improved solution to this problem,
resulting in faster compute times for engineering features relating to
overlapping jobs."  The bench stabs the benchmark trace's pending intervals
at every eligibility instant through (a) the chunked interval forest and
(b) the naive O(n·m) scan, on growing slices, and reports the speed-up —
which must grow with n.
"""

import os
import time

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.report import format_table
from repro.features.interval_tree import ChunkedIntervalForest, naive_stab_batch


def test_a1_tree_vs_naive_scaling(benchmark, bench_trace):
    result, _ = bench_trace
    rec = result.jobs.records
    elig = rec["eligible_time"]
    start = rec["start_time"]

    sizes = [1000, 4000, 16000]
    sizes = [n for n in sizes if n <= len(rec)]
    rows = []
    speedups = []
    for n in sizes:
        s, e, ts = elig[:n], start[:n], elig[:n]
        t0 = time.perf_counter()
        forest = ChunkedIntervalForest(s, e, chunk_size=100_000, overlap=10_000)
        iv_t, ptr_t = forest.stab_batch(ts)
        t_tree = time.perf_counter() - t0
        t0 = time.perf_counter()
        iv_n, ptr_n = naive_stab_batch(s, e, ts)
        t_naive = time.perf_counter() - t0
        # Same answers (counts per query suffice; exact sets are covered by
        # the unit tests).
        np.testing.assert_array_equal(np.diff(ptr_t), np.diff(ptr_n))
        rows.append([n, t_tree * 1e3, t_naive * 1e3, t_naive / t_tree])
        speedups.append(t_naive / t_tree)

    emit(
        "a1_interval_tree_speed",
        format_table(
            ["n jobs", "tree (ms)", "naive (ms)", "speed-up"], rows, float_fmt="{:.2f}"
        ),
    )

    # Timed artefact: the tree path at the largest size.
    n = sizes[-1]
    once(
        benchmark,
        lambda: ChunkedIntervalForest(elig[:n], start[:n]).stab_batch(elig[:n]),
    )

    # The speed-up exists at scale and grows with n.
    assert speedups[-1] > 2.0, speedups
    assert speedups[-1] > speedups[0]


def test_a1_parallel_chunk_build(bench_trace):
    """§V: "chunk builds proceed in parallel" — forest construction fans
    out across processes, with a merged result bit-identical to serial."""
    result, _ = bench_trace
    rec = result.jobs.records
    n = min(len(rec), 32_000)
    elig = rec["eligible_time"][:n]
    start = rec["start_time"][:n]
    # Small chunks so the bench trace yields a real fan-out (the paper's
    # 100k chunking gives one chunk per tree at bench sizes).
    chunk, overlap = 2_000, 200

    t0 = time.perf_counter()
    serial = ChunkedIntervalForest(elig, start, chunk, overlap, n_jobs=1)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = ChunkedIntervalForest(elig, start, chunk, overlap, n_jobs=2)
    t_par = time.perf_counter() - t0

    iv_s, ptr_s = serial.stab_batch(elig)
    iv_p, ptr_p = par.stab_batch(elig)
    np.testing.assert_array_equal(iv_s, iv_p)
    np.testing.assert_array_equal(ptr_s, ptr_p)

    speedup = t_serial / t_par
    emit(
        "a1_parallel_chunk_build",
        format_table(
            ["n intervals", "chunks", "serial (s)", "n_jobs=2 (s)", "speed-up"],
            [[n, serial.n_trees, t_serial, t_par, speedup]],
            float_fmt="{:.3f}",
        ),
    )
    # Process startup can only pay for itself when there is real hardware
    # parallelism; single-core runners still prove bit-identity above.
    if (os.cpu_count() or 1) >= 2:
        assert speedup > 1.0, (t_serial, t_par)
