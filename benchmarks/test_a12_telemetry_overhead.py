"""A12 — telemetry overhead gate.

The observability layer's contract (README "Observability", DESIGN.md §7):
instrumentation is coarse-grained enough to leave on — instrumented runs
stay within 5 % of a disabled-telemetry run, and with ``REPRO_TELEMETRY=0``
the residual cost of the null instruments is within 1 %.  The gate
measures the feature pipeline (the densest span/counter region) plus a
microbench of the null-instrument path itself.

Medians over several repetitions are compared, with a small absolute
slack so sub-millisecond jitter on fast machines cannot fail the ratio.
"""

import statistics
import time

from benchmarks.conftest import emit, once
from repro.eval.report import format_table
from repro.features.pipeline import FeaturePipeline
from repro.obs import metrics, tracing

REPS = 5
#: Relative ceilings from the overhead contract.
MAX_ENABLED_OVERHEAD = 1.05
MAX_DISABLED_OVERHEAD = 1.01
#: Absolute slack (seconds) under which the ratio gate is vacuous —
#: protects against noise dominating on small traces / fast machines.
ABS_SLACK_S = 0.05


def _median_runtime(fn, reps=REPS):
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _set_telemetry(flag: bool) -> None:
    metrics.set_enabled(flag)
    metrics.get_registry().reset()
    tracing.reset()


def test_a12_pipeline_overhead(benchmark, bench_trace):
    result, cluster = bench_trace
    jobs = result.jobs[: min(len(result.jobs), 12_000)]
    pipeline = FeaturePipeline(cluster, n_jobs=1)

    compute = lambda: pipeline.compute(jobs)
    compute()  # warm caches (interval trees, imports) outside timing

    try:
        _set_telemetry(False)
        t_off = _median_runtime(compute)
        _set_telemetry(True)
        t_on = _median_runtime(compute)
    finally:
        _set_telemetry(True)

    ratio = t_on / t_off if t_off > 0 else 1.0
    emit(
        "a12_telemetry_overhead",
        format_table(
            ["n jobs", "off (s)", "on (s)", "ratio"],
            [[len(jobs), t_off, t_on, ratio]],
            float_fmt="{:.4f}",
        ),
    )
    once(benchmark, compute)

    assert (
        ratio <= MAX_ENABLED_OVERHEAD or (t_on - t_off) <= ABS_SLACK_S
    ), (t_off, t_on)


def test_a12_null_instrument_cost():
    """REPRO_TELEMETRY=0: instrumented call sites must cost one dict
    lookup plus one empty call.  Measured against the bare-loop baseline
    rather than an enabled registry — this is the '≤1 % when disabled'
    half of the contract, scaled to the metric-op density of real runs
    (a handful of ops per pipeline stage, not per row)."""
    n = 200_000
    reg = metrics.MetricsRegistry(enabled=False)

    t0 = time.perf_counter()
    for _ in range(n):
        pass
    t_base = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        reg.counter("x_total").inc()
    t_null = time.perf_counter() - t0

    per_op = (t_null - t_base) / n
    emit(
        "a12_null_instrument_cost",
        format_table(
            ["ops", "ns/op"],
            [[n, per_op * 1e9]],
            float_fmt="{:.1f}",
        ),
    )
    # A null metric op must stay under a microsecond; at the real call
    # density (tens of ops per featurization) that is far below 1 %.
    assert per_op < 1e-6, per_op
