"""T2 — Table II: the engineered feature set.

Regenerates the full 33-column matrix over the benchmark trace, prints a
summary row per feature (min/mean/max of the raw values), and checks the
structural facts Table II implies: every feature exists, is finite, the
"ahead" aggregates are subsets of the "queue" aggregates, and the static
spec columns take exactly the per-partition values.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.report import format_table
from repro.features.names import FEATURE_NAMES
from repro.features.pipeline import FeaturePipeline


def test_table2_feature_matrix(benchmark, bench_trace, bench_fm):
    result, cluster = bench_trace
    fm, runtime = bench_fm

    # Timed section: one full pipeline pass (raw scale for the summary).
    pipeline = FeaturePipeline(cluster, log_transform=False)
    pred = runtime.predict_minutes(result.jobs)
    raw = once(benchmark, lambda: pipeline.compute(result.jobs, pred_runtime_min=pred))

    rows = []
    for j, name in enumerate(FEATURE_NAMES):
        col = raw.X[:, j]
        rows.append([name, float(col.min()), float(col.mean()), float(col.max())])
    emit(
        "table2_features",
        format_table(["feature", "min", "mean", "max"], rows, float_fmt="{:.2f}"),
    )

    assert raw.X.shape[1] == 33
    assert np.all(np.isfinite(raw.X))
    names = list(FEATURE_NAMES)
    X = raw.X
    # Ahead ⊆ queue, per aggregate.
    for kind in ("jobs", "cpus", "mem", "nodes", "timelimit"):
        a = X[:, names.index(f"par_{kind}_ahead")]
        q = X[:, names.index(f"par_{kind}_queue")]
        assert np.all(a <= q + 1e-6), kind
    # Static specs take one value per partition.
    parts = result.jobs.column("partition")
    for name in ("par_total_nodes", "par_total_cpu", "par_total_gpu"):
        col = X[:, names.index(name)]
        for p in np.unique(parts):
            assert len(np.unique(col[parts == p])) == 1
