"""A10 — feature-cache effectiveness on the offline hot path.

§V names interval-tree feature engineering over the full trace as the
dominant offline cost; the content-addressed on-disk cache
(:mod:`repro.features.cache`) makes every re-featurisation of an unchanged
(trace, config, runtime-predictions) triple a single ``.npz`` read.  The
bench measures a cold build vs a warm hit over the benchmark trace and
requires the hit to be at least 10× faster and byte-identical.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.report import format_table, format_timing_report
from repro.features.cache import FeatureCache
from repro.features.pipeline import FeaturePipeline
from repro.obs import tracing


def test_a10_cache_hit_speedup(benchmark, bench_trace, tmp_path):
    result, cluster = bench_trace
    jobs = result.jobs[: min(len(result.jobs), 16_000)]

    cache = FeatureCache(tmp_path / "features")
    pipeline = FeaturePipeline(cluster, cache=cache, n_jobs=1)

    with tracing.span("a10.cold") as rec_cold:
        cold = pipeline.compute(jobs)
    with tracing.span("a10.warm") as rec_warm:
        warm = pipeline.compute(jobs)
    t_cold, t_warm = rec_cold.elapsed, rec_warm.elapsed

    assert not cold.cache_hit and warm.cache_hit
    assert cold.X.tobytes() == warm.X.tobytes()
    assert cache.stats.hits == 1 and cache.stats.stores == 1

    emit(
        "a10_feature_cache",
        format_table(
            ["n jobs", "cold (s)", "warm hit (s)", "speed-up"],
            [[len(jobs), t_cold, t_warm, t_cold / t_warm]],
            float_fmt="{:.4f}",
        )
        + "\n\ncold-run stage breakdown:\n"
        + format_timing_report(cold.timings, cache.stats),
    )

    # Timed artefact: the warm path (one content hash + one .npz read).
    once(benchmark, lambda: pipeline.compute(jobs))

    assert t_cold / t_warm >= 10.0, (t_cold, t_warm)
