"""F3 — Fig. 3: the time-series split layout.

Fig. 3 illustrates expanding-window time-series CV.  The bench prints the
exact fold boundaries used everywhere in the reproduction (5 folds, test
size one-sixth of the trace, §III) and asserts the layout's invariants.
"""

from benchmarks.conftest import emit, once
from repro.data.splits import TimeSeriesSplit
from repro.eval.report import format_table


def test_fig3_split_layout(benchmark, bench_fm, bench_config):
    fm, _ = bench_fm
    splitter = TimeSeriesSplit(bench_config.n_splits, bench_config.test_fraction)

    bounds = once(benchmark, lambda: splitter.fold_bounds(len(fm)))

    rows = [
        [b["fold"], b["train_start"], b["train_end"], b["test_start"], b["test_end"]]
        for b in bounds
    ]
    emit(
        "fig3_time_splits",
        format_table(
            ["fold", "train start", "train end", "test start", "test end"], rows
        ),
    )

    assert len(bounds) == 5
    ts = splitter.test_size(len(fm))
    for b in bounds:
        assert b["test_start"] == b["train_end"]  # no gap, no overlap
        assert b["test_end"] - b["test_start"] <= ts
    # Expanding training window; final fold tests the most recent sixth.
    ends = [b["train_end"] for b in bounds]
    assert ends == sorted(ends)
    assert bounds[-1]["test_end"] == len(fm)
