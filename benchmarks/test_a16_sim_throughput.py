"""A16 — simulator engine throughput gate.

The fast engine (PR 9: indexed lazy-deletion event queue, swap-remove
pools, vectorised backfill pass, incremental cached priority) exists for
one reason: trace generation at study scale.  This gate holds it to a
≥5× jobs/second advantage over the reference engine on a congested
Anvil-shaped workload, and re-checks the bitwise contract on the exact
traces it times — a speedup that changes the trace is a bug, not a win.

The CI workload is 60 k jobs at load 0.5 (the congestion regime where
the reference engine's per-pass rebuild cost dominates, and the regime
study sweeps actually visit).  Knobs: ``REPRO_BENCH_JOBS``,
``REPRO_BENCH_SEED`` and ``REPRO_BENCH_SIM_LOAD``.  The committed
``out/a16_sim_throughput.txt`` records a larger local run (see
benchmarks/README.md).
"""

import os
import time

from benchmarks.conftest import emit, once
from repro.eval.report import format_table
from repro.slurm.anvil import anvil_cluster
from repro.slurm.simulator import Simulator
from repro.workload.generator import WorkloadConfig, generate_submissions

#: jobs/s ratio the fast engine must clear in CI.  Locally measured at
#: 8–14× (60 k–200 k jobs, load 0.5); the floor leaves headroom for
#: noisy shared runners without ever letting a regression to the
#: reference engine's complexity class pass.
MIN_SPEEDUP = 5.0


def _workload():
    cfg = WorkloadConfig(
        n_jobs=int(os.environ.get("REPRO_BENCH_JOBS", 60_000)),
        seed=int(os.environ.get("REPRO_BENCH_SEED", 7)),
        load=float(os.environ.get("REPRO_BENCH_SIM_LOAD", 0.5)),
        cluster_scale=0.05,
    )
    cluster = anvil_cluster(scale=cfg.cluster_scale)
    subs, pop = generate_submissions(cfg, cluster)
    return cfg, cluster, subs, pop


def test_a16_sim_throughput(benchmark):
    cfg, cluster, subs, pop = _workload()

    def run(engine):
        sim = Simulator(cluster, n_users=pop.n_users, engine=engine)
        t0 = time.perf_counter()
        res = sim.run(subs.copy())
        return time.perf_counter() - t0, res

    t_ref, res_ref = run("reference")
    t_fast, res_fast = once(benchmark, lambda: run("fast"))

    # The timed traces themselves must agree bit for bit.
    assert res_fast.jobs._records.tobytes() == res_ref.jobs._records.tobytes()
    assert res_fast.n_scheduler_passes == res_ref.n_scheduler_passes

    n = cfg.n_jobs
    speedup = t_ref / t_fast if t_fast > 0 else float("inf")
    emit(
        "a16_sim_throughput",
        format_table(
            ["engine", "jobs", "load", "wall (s)", "jobs/s", "speedup"],
            [
                ["reference", n, cfg.load, t_ref, n / t_ref, 1.0],
                ["fast", n, cfg.load, t_fast, n / t_fast, speedup],
            ],
            float_fmt="{:.2f}",
        ),
    )
    assert speedup >= MIN_SPEEDUP, (t_ref, t_fast, speedup)
