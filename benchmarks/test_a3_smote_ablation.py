"""A3 — §III claim: SMOTE + undersampling helps the skewed classifier.

"To mitigate data skew, SMOTE … algorithms were used for undersampling the
majority class … and oversampling the minority class … to create balanced
classes."  The bench trains the identical classifier with and without the
balancing step and compares *balanced* accuracy (mean of per-class
accuracies) on the most recent holdout — the metric imbalance corrupts.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.classifier import QuickStartClassifier
from repro.data.splits import holdout_recent
from repro.eval.report import format_table
from repro.nn import Activation, Adam, Dense, Dropout, EarlyStopping, Sequential
from repro.utils.rng import default_rng


def _train_unbalanced(X, y, cfg, seed):
    """The same network/optimiser/scaling as QuickStartClassifier, minus
    the SMOTE + undersampling step — the only varying factor."""
    from repro.features.transforms import StandardScaler

    rng = default_rng(seed)
    scaler = StandardScaler().fit(X)
    Xs = scaler.transform(X)
    layers = []
    w = X.shape[1]
    for h in cfg.hidden:
        layers += [Dense(w, h, seed=rng), Activation(cfg.activation)]
        if cfg.dropout:
            layers.append(Dropout(cfg.dropout, seed=rng))
        w = h
    layers.append(Dense(w, 1, init="glorot_uniform", seed=rng))
    net = Sequential(layers).compile("bce_logits", Adam(lr=cfg.lr))
    n_val = max(1, int(0.1 * len(Xs)))
    net.fit(
        Xs[:-n_val],
        y[:-n_val],
        epochs=cfg.epochs,
        batch_size=cfg.batch_size,
        validation_data=(Xs[-n_val:], y[-n_val:]),
        callbacks=[EarlyStopping(patience=cfg.patience)],
        seed=rng,
    )

    def predict(Xq):
        logits = net.predict(scaler.transform(Xq))
        return (0.5 * (1.0 + np.tanh(0.5 * logits)) >= 0.5).astype(float)

    return predict


def _balanced_accuracy(y_true, y_pred):
    accs = []
    for cls in (0.0, 1.0):
        mask = y_true == cls
        if mask.any():
            accs.append(float(np.mean(y_pred[mask] == cls)))
    return float(np.mean(accs))


def test_a3_smote_vs_unbalanced(benchmark, bench_fm, bench_config):
    fm, _ = bench_fm
    q = fm.queue_time_min
    y = (q > bench_config.cutoff_min).astype(float)
    past, recent = holdout_recent(len(fm), bench_config.holdout_fraction)

    def run_both():
        clf = QuickStartClassifier(
            fm.X.shape[1], bench_config.classifier, seed=bench_config.seed
        ).fit(fm.X[past], y[past])
        smote_pred = clf.predict(fm.X[recent]).astype(float)
        raw_predict = _train_unbalanced(
            fm.X[past], y[past], bench_config.classifier, seed=bench_config.seed
        )
        raw_pred = raw_predict(fm.X[recent])
        return smote_pred, raw_pred

    smote_pred, raw_pred = once(benchmark, run_both)

    truth = y[recent]
    bal_smote = _balanced_accuracy(truth, smote_pred)
    bal_raw = _balanced_accuracy(truth, raw_pred)
    long_recall_smote = float(np.mean(smote_pred[truth == 1] == 1))
    long_recall_raw = float(np.mean(raw_pred[truth == 1] == 1))
    emit(
        "a3_smote_ablation",
        format_table(
            ["variant", "balanced accuracy", "long-wait recall"],
            [
                ["SMOTE + undersampling", bal_smote, long_recall_smote],
                ["unbalanced", bal_raw, long_recall_raw],
            ],
            float_fmt="{:.4f}",
        ),
    )

    # Shape: balancing lifts minority-class recall without destroying
    # balanced accuracy.
    assert long_recall_smote >= long_recall_raw - 0.02
    assert bal_smote >= bal_raw - 0.02
