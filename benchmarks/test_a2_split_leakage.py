"""A2 — §III claim: shuffled splits leak and inflate performance ~2×.

"This phenomenon was observed during early testing when doing a simple
train-test split with shuffling, which doubled the performance of the
model when compared to not shuffling the dataset due to data leakage."
Back-to-back near-identical jobs straddle a shuffled split, so the test
set contains siblings of training rows.  The bench trains the identical
regressor under both protocols and reports the apparent MAPE.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.regressor import QueueTimeRegressor
from repro.data.splits import shuffled_split
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.report import format_table


def test_a2_shuffled_split_inflates_performance(benchmark, bench_fm, bench_config):
    fm, _ = bench_fm
    q = fm.queue_time_min
    long_rows = np.flatnonzero(q > bench_config.cutoff_min)
    X = fm.X[long_rows]
    m = q[long_rows]
    n = len(long_rows)

    def train_eval(train_idx, test_idx, seed):
        reg = QueueTimeRegressor(X.shape[1], bench_config.regressor, seed=seed)
        reg.fit(X[train_idx], m[train_idx])
        return mean_absolute_percentage_error(m[test_idx], reg.predict_minutes(X[test_idx]))

    def run_both():
        cut = n - max(1, n // 6)
        honest = train_eval(np.arange(cut), np.arange(cut, n), seed=0)
        tr, te = shuffled_split(n, 1 / 6, seed=0)
        leaky = train_eval(tr, te, seed=0)
        return honest, leaky

    honest, leaky = once(benchmark, run_both)

    emit(
        "a2_split_leakage",
        "\n".join(
            [
                format_table(
                    ["protocol", "MAPE %"],
                    [["time-ordered (honest)", honest], ["shuffled (leaky)", leaky]],
                ),
                f"apparent improvement from shuffling: {honest / leaky:.2f}x"
                "   (paper: ~2x)",
            ]
        ),
    )

    # Shape: shuffling looks substantially better than the honest split.
    assert leaky < honest, (leaky, honest)
    assert honest / leaky > 1.3
