"""R1 — §IV: classifier binary accuracy.

Paper: "The classification model had a binary accuracy of 90.48 % with
similar accuracy on both classes on a test set of the most recent 80,000
jobs."  The bench trains the hierarchy on the past 80 % and evaluates the
quick-start gate on the most recent 20 %, reporting overall and per-class
accuracy.
"""

from benchmarks.conftest import emit, once
from repro.eval.report import format_table


def test_r1_classifier_holdout_accuracy(benchmark, bench_trained):
    out = once(benchmark, lambda: bench_trained)

    emit(
        "r1_classifier_accuracy",
        format_table(
            ["metric", "value"],
            [
                ["overall accuracy", out.classifier_accuracy],
                ["quick-start class accuracy", out.classifier_accuracy_quick],
                ["long-wait class accuracy", out.classifier_accuracy_long],
                ["holdout size", out.n_holdout],
                ["paper overall", 0.9048],
            ],
            float_fmt="{:.4f}",
        ),
    )

    # Shape: ~90 % regime, both classes clearly learned.
    assert out.classifier_accuracy > 0.85
    assert out.classifier_accuracy_quick > 0.7
    assert out.classifier_accuracy_long > 0.7
