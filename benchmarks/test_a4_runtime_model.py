"""A4 — §II/§V claims about the runtime model.

Two claims: (i) "it is important to have additional information regarding
when running jobs will finish" — i.e. the runtime model must beat the
scheduler's own assumption that jobs run to their limit (users use ~15 %
of requested walltime); (ii) §V's proposed extension — user-history
features — should improve the runtime model in its own (log-space) metric.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.config import RuntimeModelConfig
from repro.core.runtime_model import RuntimePredictor
from repro.eval.report import format_table


def test_a4_runtime_model_ablation(benchmark, bench_trace):
    result, _ = bench_trace
    jobs = result.jobs
    n = len(jobs) // 2
    train, test = jobs[:n], jobs[n:]
    actual_log = np.log1p(test.runtime_min)
    limit_log = np.log1p(test.column("timelimit_min"))

    def fit_all():
        base = RuntimePredictor(
            RuntimeModelConfig(n_estimators=30), seed=0
        ).fit(train)
        ext = RuntimePredictor(
            RuntimeModelConfig(n_estimators=30), seed=0, features="request+user"
        ).fit(train)
        exact = RuntimePredictor(
            RuntimeModelConfig(n_estimators=30, tree_method="exact"), seed=0
        ).fit(train)
        return base, ext, exact

    base, ext, exact = once(benchmark, fit_all)

    def log_mae(pred_minutes):
        return float(np.mean(np.abs(np.log1p(pred_minutes) - actual_log)))

    err_limit = float(np.mean(np.abs(limit_log - actual_log)))
    err_base = log_mae(base.predict_minutes(test))
    err_ext = log_mae(ext.predict_minutes(test))
    err_exact = log_mae(exact.predict_minutes(test))
    util = float(np.mean(test.walltime_utilization))
    emit(
        "a4_runtime_model",
        "\n".join(
            [
                format_table(
                    ["runtime estimate", "log-MAE vs actual"],
                    [
                        ["requested timelimit (scheduler's view)", err_limit],
                        ["RF, request features (paper's model)", err_base],
                        ["RF + user history (§V extension)", err_ext],
                        ["RF, exact split search (reference)", err_exact],
                    ],
                    float_fmt="{:.4f}",
                ),
                f"mean walltime utilisation: {100 * util:.1f}%  (paper: ~15%)",
            ]
        ),
    )

    # (i) the learned model crushes the timelimit assumption;
    assert err_base < 0.7 * err_limit
    # (ii) user history never hurts, and utilisation is in the paper's regime.
    assert err_ext < err_base * 1.02
    assert 0.05 < util < 0.4
    # (iii) default histogram split search costs essentially no accuracy.
    assert err_base < err_exact * 1.02
