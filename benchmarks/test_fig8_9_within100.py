"""F8/F9 — Figs. 8 & 9: percent of predictions within 100 % error.

§IV: "the neural network consistently predicted a higher proportion of
jobs to be within this threshold … the variance between results for this
metric was less than the variance of average percent error".  The bench
prints both folds' within-100 % series and checks both claims.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.report import format_table


def test_fig8_9_within_100_percent(benchmark, bench_comparison):
    comparison = once(benchmark, lambda: bench_comparison)

    lines = []
    for fold in (4, 5):
        series = comparison.series("within_100", fold)
        rows = [[m, 100 * v] for m, v in sorted(series.items(), key=lambda kv: -kv[1])]
        lines.append(f"fold {fold} (Fig. {'8' if fold == 4 else '9'}):")
        lines.append(format_table(["model", "% within 100% error"], rows))
        lines.append("")
    emit("fig8_9_within100", "\n".join(lines))

    for fold in (4, 5):
        # NN at or near the top.  (The NN is tuned for average percent
        # error; on individual folds one tree model can edge it on this
        # secondary metric, so the bar is top-half membership within ten
        # points of the best — the paper's "consistently higher" holds on
        # the primary fold and directionally here.)
        series = comparison.series("within_100", fold)
        best = max(series.values())
        ranked = sorted(series.values(), reverse=True)
        assert series["neural_net"] >= best - 0.10, series
        assert series["neural_net"] >= ranked[1] - 1e-9, series  # top two

    # Lower spread than the APE metric (relative to its scale), per §IV.
    def rel_spread(metric):
        spreads = []
        for fold in (4, 5):
            vals = np.array(list(comparison.series(metric, fold).values()))
            spreads.append(vals.std() / max(vals.mean(), 1e-9))
        return float(np.mean(spreads))

    assert rel_spread("within_100") < rel_spread("mape")
