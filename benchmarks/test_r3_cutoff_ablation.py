"""R3 — §III: the 5 / 10 / 30-minute cutoff ablation.

Paper: "Splitting the data at the 5-minute mark resulted in decreased
performance for the regression model, with over twice the mean absolute
percentage error as opposed to the 10-minute cutoff.  As for the 30-minute
cutoff … performance increases were only marginal", so 10 minutes won on
user experience + class balance grounds.  The bench sweeps the cutoff and
reports late-fold regression MAPE plus the long-class base rate per cutoff.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import emit, once
from repro.core import run_regression_cv
from repro.eval.report import format_table


def test_r3_cutoff_sweep(benchmark, bench_fm, bench_config):
    fm, _ = bench_fm
    q = fm.queue_time_min
    cutoffs = (5.0, 10.0, 30.0)

    def sweep():
        rows = {}
        for cutoff in cutoffs:
            cfg = dataclasses.replace(bench_config, cutoff_min=cutoff)
            cv = run_regression_cv(fm, cfg)
            rows[cutoff] = cv
        return rows

    results = once(benchmark, sweep)

    table = []
    for cutoff in cutoffs:
        cv = results[cutoff]
        base_rate = float(np.mean(q > cutoff))
        table.append(
            [
                f"{cutoff:.0f} min",
                cv.mape_last3,
                min(f.mape for f in cv.folds[-3:]),
                100 * base_rate,
            ]
        )
    emit(
        "r3_cutoff_ablation",
        "\n".join(
            [
                format_table(
                    [
                        "cutoff",
                        "MAPE last-3 mean %",
                        "best late fold %",
                        "long-class rate %",
                    ],
                    table,
                ),
                "paper: 5-min cutoff roughly doubles regression MAPE; 30-min "
                "only marginally better than 10-min",
            ]
        ),
    )

    # Shape: lowering the cutoff to 5 min pulls barely-late jobs into the
    # regression set and gives no improvement (the paper saw it *hurt* by
    # ~2x on Anvil; on the synthetic trace the effect is directionally
    # neutral-to-negative, never positive); 30 min does not massively beat
    # 10 min.
    mape5 = results[5.0].mape_last3
    mape10 = results[10.0].mape_last3
    mape30 = results[30.0].mape_last3
    assert mape5 > 0.85 * mape10, (mape5, mape10)
    assert mape30 > 0.3 * mape10  # no dramatic free win from 30 min
    # Class balance shrinks with the cutoff (why 30 min risks data paucity).
    rates = [np.mean(q > c) for c in cutoffs]
    assert rates[0] > rates[1] > rates[2]
