"""A8 — §III: the batch-normalisation decision.

"Batch normalization was tested on the regression model; however, it was
not selected for use.  Not only did batch normalization layers not result
in notably improved performance, but they also led to concerns over use in
post-production … the model needed to be able to predict extremely high
and extremely low values simultaneously."  The bench trains the identical
regressor with and without batch norm on the final fold and reports MAPE
plus the prediction range each variant can produce.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import emit, once
from repro.core.regressor import QueueTimeRegressor
from repro.data.splits import TimeSeriesSplit
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.report import format_table


def test_a8_batchnorm_ablation(benchmark, bench_fm, bench_config):
    fm, _ = bench_fm
    q = fm.queue_time_min
    splitter = TimeSeriesSplit(bench_config.n_splits, bench_config.test_fraction)
    train_idx, test_idx = list(splitter.split(len(fm)))[-1]
    tr = train_idx[q[train_idx] > bench_config.cutoff_min]
    te = test_idx[q[test_idx] > bench_config.cutoff_min]

    def run_both():
        out = {}
        for bn in (False, True):
            cfg = dataclasses.replace(bench_config.regressor, batch_norm=bn)
            reg = QueueTimeRegressor(fm.X.shape[1], cfg, seed=9)
            reg.fit(fm.X[tr], q[tr])
            pred = reg.predict_minutes(fm.X[te])
            out["batch norm" if bn else "no batch norm (paper)"] = (
                mean_absolute_percentage_error(q[te], pred),
                float(pred.min()),
                float(pred.max()),
            )
        return out

    results = once(benchmark, run_both)
    rows = [
        [name, mape, lo, hi] for name, (mape, lo, hi) in results.items()
    ]
    emit(
        "a8_batchnorm",
        "\n".join(
            [
                format_table(
                    ["variant", "fold-5 MAPE %", "min pred (min)", "max pred (min)"],
                    rows,
                ),
                "paper: batch norm gave no notable improvement and was "
                "rejected for deployment concerns",
            ]
        ),
    )

    mape_no, *_ = results["no batch norm (paper)"]
    mape_bn, *_ = results["batch norm"]
    # Shape: no dramatic win from batch norm (the paper's finding).
    assert mape_bn > 0.6 * mape_no, results
    assert np.isfinite(mape_bn) and np.isfinite(mape_no)
