"""T1 — Table I: Anvil historic job statistics.

Paper values (3.88 M jobs, 4 624 users): requested time max 432 h / mean
12.55 h / median 4 h; runtime mean 1.9 h / median 0.03 h; wasted time mean
10.7 h; jobs-per-user mean 839 / median 43 — an extreme right skew in every
row.  The bench regenerates the same four rows from the synthetic trace and
checks the *shape*: requested-time medians in hours not minutes, runtime a
small fraction of the request, jobs-per-user mean ≫ median.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.data.stats import format_statistics_table, job_statistics


def test_table1_job_statistics(benchmark, bench_trace):
    result, _ = bench_trace
    jobs = result.jobs

    stats = once(benchmark, lambda: job_statistics(jobs))
    emit("table1_job_stats", format_statistics_table(stats))

    req = stats["Requested Time (hr)"]
    run = stats["Runtime (hr)"]
    waste = stats["Wasted Time (hr)"]
    user = stats["Jobs Submitted By User"]

    # Requested-time regime: median ~4 h, mean ~12.5 h (paper).
    assert 1.0 <= req["median"] <= 10.0
    assert 6.0 <= req["mean"] <= 25.0
    # Runtime: tiny median (crash/quick-exit mass), mean a couple of hours.
    assert run["median"] <= 0.5
    assert run["mean"] <= 0.35 * req["mean"]
    # Wasted time dominates requested time (≈ 15 % mean utilisation).
    assert waste["mean"] >= 0.6 * req["mean"]
    # Jobs-per-user heavy tail: mean far above median.
    assert user["mean"] > 3 * user["median"]
