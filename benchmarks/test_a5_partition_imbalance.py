"""A5 — §V: partition imbalance.

"Out of the roughly 3.8 million historical jobs, over 2.7 million were in
the 'shared' partition.  This stark contrast may obfuscate unique
attributes relating to prediction on these smaller queues."  The bench
reports each partition's trace share and the trained regressor's per-
partition MAPE on the recent holdout, making the imbalance and its
prediction cost visible.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.data.splits import holdout_recent
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.report import format_table


def test_a5_partition_shares_and_errors(benchmark, bench_trace, bench_fm, bench_trained, bench_config):
    result, cluster = bench_trace
    fm, _ = bench_fm
    jobs = result.jobs
    parts = jobs.column("partition")
    names = jobs.partition_names
    q = fm.queue_time_min
    _, recent = holdout_recent(len(fm), bench_config.holdout_fraction)
    reg = bench_trained.model.regressor

    def per_partition():
        rows = []
        for p, name in enumerate(names):
            share = float(np.mean(parts == p))
            te = recent[(parts[recent] == p) & (q[recent] > bench_config.cutoff_min)]
            if len(te) >= 10:
                mape = mean_absolute_percentage_error(
                    q[te], reg.predict_minutes(fm.X[te])
                )
            else:
                mape = float("nan")
            rows.append([name, 100 * share, len(te), mape])
        return rows

    rows = once(benchmark, per_partition)
    emit(
        "a5_partition_imbalance",
        "\n".join(
            [
                format_table(
                    ["partition", "share of jobs %", "holdout long-wait n", "MAPE %"],
                    rows,
                ),
                "paper: shared carries ~69% of all jobs, obscuring the "
                "smaller queues' behaviour",
            ]
        ),
    )

    shares = {r[0]: r[1] for r in rows}
    # The imbalance the paper describes: shared dominates.
    assert shares["shared"] > 50.0
    # At least two partitions have measurable long-wait holdout sets.
    measured = [r for r in rows if np.isfinite(r[3])]
    assert len(measured) >= 2
