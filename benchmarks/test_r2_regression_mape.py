"""R2 — §IV: regression MAPE over the time-series folds.

Paper: "the regression model had an average mean absolute percentage error
of 97.567 % over the last three test splits … (with individual mean
absolute percentage errors of 69.99 %, 90.87 %, and 131.18 %)".  The bench
reports every fold's MAPE and the last-three average, and checks the
regime: MAPE of order 100 %, not 10 % and not 1000 %, on the data-rich
late folds.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.metrics import binned_ape
from repro.eval.report import format_table


def test_r2_regression_fold_mape(benchmark, bench_cv):
    cv = once(benchmark, lambda: bench_cv)

    rows = [
        [f.fold, f.n_train, f.n_test, f.mape, f.pearson, f.within_100]
        for f in cv.folds
    ]
    # §IV also claims proportionate errors across time magnitudes; report
    # the final fold's per-bin APE alongside.
    final = cv.folds[-1]
    bin_rows = [
        [f"{b['lo']:.0f}-{b['hi']:.0f} min", b["n"], b["mape"], b["median_ape"]]
        for b in binned_ape(final.y_true, final.y_pred)
    ]
    emit(
        "r2_regression_mape",
        "\n".join(
            [
                format_table(
                    ["fold", "n_train", "n_test", "MAPE %", "pearson r", "within 100%"],
                    rows,
                ),
                f"mean MAPE over last 3 folds: {cv.mape_last3:.2f}%"
                "   (paper: 97.57% — folds 69.99 / 90.87 / 131.18)",
                "",
                "final fold, APE by queue-time magnitude (§IV's bins-of-time check):",
                format_table(
                    ["bin", "n", "MAPE %", "median APE %"], bin_rows
                ),
            ]
        ),
    )

    # Shape: order-100 % MAPE on the late folds (the paper's regime), with
    # the best late fold under ~150 %.
    last3 = [f.mape for f in cv.folds[-3:]]
    assert min(last3) < 150.0
    assert cv.mape_last3 < 600.0
    assert all(np.isfinite(m) for m in last3)
