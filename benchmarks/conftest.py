"""Shared benchmark fixtures.

Every table/figure bench draws on one simulated trace, one feature matrix
and one set of trained models, all session-scoped so the suite pays for
each exactly once.  Scale knobs come from the environment:

- ``REPRO_BENCH_JOBS``   (default 60000) — trace size,
- ``REPRO_BENCH_SEED``   (default 7),
- ``REPRO_BENCH_LOAD``   (default 0.32) — bottleneck-pool utilisation,
- ``REPRO_BENCH_TRIALS`` (default 20) — per-fold TPE budget for the NN
  (the paper's Optuna step).

Each bench prints the rows/series the paper reports and also writes them
to ``benchmarks/out/<experiment>.txt`` so EXPERIMENTS.md can reference a
concrete artefact.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import TroutConfig, TuningConfig, run_regression_cv, train_trout
from repro.core.training import build_feature_matrix
from repro.eval.comparison import compare_models
from repro.workload import WorkloadConfig, generate_trace

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def bench_workload_config() -> WorkloadConfig:
    return WorkloadConfig(
        n_jobs=int(os.environ.get("REPRO_BENCH_JOBS", 60_000)),
        seed=int(os.environ.get("REPRO_BENCH_SEED", 7)),
        load=float(os.environ.get("REPRO_BENCH_LOAD", 0.32)),
        cluster_scale=0.05,
    )


@pytest.fixture(scope="session")
def bench_tuning() -> TuningConfig:
    return TuningConfig(
        n_trials=int(os.environ.get("REPRO_BENCH_TRIALS", 20)), seed=0
    )


@pytest.fixture(scope="session")
def bench_trace(bench_workload_config):
    """(SimulationResult, Cluster) — the benchmark's Anvil stand-in."""
    return generate_trace(bench_workload_config)


@pytest.fixture(scope="session")
def bench_config() -> TroutConfig:
    return TroutConfig(seed=0)


@pytest.fixture(scope="session")
def bench_fm(bench_trace, bench_config):
    """(FeatureMatrix, RuntimePredictor) over the benchmark trace."""
    result, cluster = bench_trace
    return build_feature_matrix(result.jobs, cluster, bench_config)


@pytest.fixture(scope="session")
def bench_cv(bench_fm, bench_config, bench_tuning):
    """Time-series CV of the TPE-tuned regressor (Figs. 4-5, §IV MAPE)."""
    fm, _ = bench_fm
    return run_regression_cv(fm, bench_config, tuning=bench_tuning)


@pytest.fixture(scope="session")
def bench_trained(bench_fm, bench_config):
    """Full hierarchy trained on the past 80 % (R1 accuracy)."""
    fm, _ = bench_fm
    return train_trout(fm, bench_config)


@pytest.fixture(scope="session")
def bench_comparison(bench_fm, bench_config, bench_tuning):
    """Model zoo on folds 4 and 5 (Figs. 6-9); NN gets the HPO treatment."""
    fm, _ = bench_fm
    return compare_models(fm, bench_config, folds=[4, 5], tuning=bench_tuning)


def once(benchmark, fn):
    """Run a heavyweight callable exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
