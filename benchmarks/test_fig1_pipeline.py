"""F1 — Fig. 1: the train/infer pipeline overview.

Fig. 1 is an architecture diagram; the runnable equivalent is a smoke pass
through every box: trace → features (+ runtime model) → classifier +
regressor training → Algorithm 1 inference producing user-facing strings.
The bench times a batched hierarchical inference pass (the CLI's hot path —
the paper reports "only a few seconds" for single-job inference on one
CPU).
"""

import numpy as np

from benchmarks.conftest import emit, once


def test_fig1_pipeline_inference(benchmark, bench_fm, bench_trained):
    fm, _ = bench_fm
    model = bench_trained.model
    X = fm.X[-5000:]

    minutes = once(benchmark, lambda: model.predict_minutes(X))

    msgs = model.predict_messages(X[-5:])
    emit(
        "fig1_pipeline",
        "\n".join(
            [
                f"hierarchical inference over {len(X)} jobs",
                f"quick-start fraction: {np.mean(minutes == model.cutoff_min / 2):.3f}",
                "sample Algorithm-1 outputs:",
                *[f"  {m}" for m in msgs],
            ]
        ),
    )
    assert len(minutes) == len(X)
    assert all(m.startswith("Predicted to") for m in msgs)
