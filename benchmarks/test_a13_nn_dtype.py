"""A13 — float32 compute policy vs the float64 reference for the NN.

The allocation-free float32 path exists purely for speed, so this bench
measures the trade where it matters: a regression-scale training run
(``REPRO_BENCH_NN_ROWS`` rows, default 30 000, of a synthetic log1p
queue-time task) through the production architecture (128/64/32 ELU,
smooth-L1, Adam with clip_norm).  Gates:

- float32 epochs must be at least 1.5× faster than float64 (median of
  the steady-state epochs, timed via the training span tree);
- steady-state epochs must stay allocation-flat: after the first
  (buffer-warming) epoch the median net heap-block delta per epoch is
  bounded, i.e. no per-batch array churn;
- the float32 holdout MAPE (expm1-decoded) must stay within 2 %
  relative of the float64 reference.
"""

import os
import statistics

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.report import format_table
from repro.nn import Activation, Adam, Dense, Dropout, Sequential
from repro.obs import tracing

EPOCHS = 25
BATCH = 256


def _data(n_rows, seed=7):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_rows, 33))
    w = rng.normal(size=33)
    queue_min = np.abs(X @ w) * 30.0 + rng.gamma(2.0, 5.0, size=n_rows)
    y = np.log1p(queue_min)
    n_tr = int(n_rows * 0.8)
    return X[:n_tr], y[:n_tr], X[n_tr:], y[n_tr:]


def _build(dtype):
    # Mirrors RegressorConfig's production stack: 128/64/32 ELU with
    # dropout 0.1 after every hidden layer, smooth-L1, Adam at 1e-3.
    layers = []
    w_in = 33
    for i, width in enumerate((128, 64, 32)):
        layers += [
            Dense(w_in, width, seed=2 * i + 1),
            Activation("elu"),
            Dropout(0.1, seed=2 * i + 2),
        ]
        w_in = width
    layers.append(Dense(w_in, 1, seed=9))
    return Sequential(layers, dtype=dtype).compile(
        "smooth_l1", Adam(lr=1e-3, clip_norm=5.0)
    )


def _train_and_measure(dtype, data):
    Xtr, ytr, Xte, yte = data
    net = _build(dtype)
    with tracing.span("a13_fit") as root:
        net.fit(Xtr, ytr, epochs=EPOCHS, batch_size=BATCH, seed=0)
    epochs = [c for c in root.children if c.name == "epoch"]
    assert len(epochs) == EPOCHS
    # Skip the first epoch in both measures: it pays buffer warm-up and
    # one-time setup that the steady state, by definition, does not.
    steady = epochs[1:]
    epoch_s = statistics.median(e.elapsed for e in steady)
    alloc_blocks = statistics.median(e.alloc_blocks for e in steady)
    pred = np.expm1(np.asarray(net.predict(Xte), dtype=np.float64))
    truth = np.expm1(yte)
    mape = float(
        np.mean(np.abs(pred - truth) / np.maximum(truth, 1e-9)) * 100.0
    )
    return {"epoch_s": epoch_s, "alloc_blocks": alloc_blocks, "mape": mape}


def test_a13_nn_dtype(benchmark):
    n_rows = int(os.environ.get("REPRO_BENCH_NN_ROWS", 30_000))
    data = _data(n_rows)

    def run():
        return {d: _train_and_measure(d, data) for d in ("float64", "float32")}

    res = once(benchmark, run)
    f32, f64 = res["float32"], res["float64"]
    speedup = f64["epoch_s"] / f32["epoch_s"]
    rel = f32["mape"] / f64["mape"] - 1.0

    emit(
        "a13_nn_dtype",
        "\n".join(
            [
                f"rows={n_rows}  epochs={EPOCHS}  batch={BATCH}  "
                "arch=33-128-64-32-1 (elu, smooth_l1, adam)",
                format_table(
                    [
                        "dtype",
                        "epoch (s)",
                        "alloc blocks/epoch",
                        "holdout MAPE (%)",
                    ],
                    [
                        [
                            "float64",
                            f64["epoch_s"],
                            f64["alloc_blocks"],
                            f64["mape"],
                        ],
                        [
                            "float32",
                            f32["epoch_s"],
                            f32["alloc_blocks"],
                            f32["mape"],
                        ],
                    ],
                    float_fmt="{:.3f}",
                ),
                f"float32 epoch speedup: {speedup:.2f}x",
                f"float32 MAPE delta vs float64: {100 * rel:+.2f}% relative",
            ]
        ),
    )

    assert speedup >= 1.5
    # Steady-state epochs must not churn arrays: the median per-epoch net
    # heap-block delta stays far below one block per batch-step array.
    assert f32["alloc_blocks"] < 4096
    assert abs(rel) <= 0.02
