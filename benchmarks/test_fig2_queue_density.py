"""F2 — Fig. 2: queue-time density.

The paper's density graph shows an exponentially decreasing distribution:
"a substantial majority of jobs … have a near-zero queue time, but some
have days-long queue times"; 87 % of the raw data queues under ten minutes.
The bench regenerates the histogram series (log-scaled bins) and checks the
regime: dominant near-zero mass, monotone-ish decay, a tail beyond a day.
"""

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.report import density_series, format_table


def test_fig2_queue_time_density(benchmark, bench_trace):
    result, _ = bench_trace
    q = result.queue_time_min

    series = once(benchmark, lambda: density_series(q, n_bins=40))

    frac_quick = float(np.mean(q < 10))
    rows = [
        [f"{c:.2f}", f"{d:.3e}"]
        for c, d in zip(series["bin_centers"][::4], series["density"][::4])
    ]
    emit(
        "fig2_queue_density",
        "\n".join(
            [
                f"fraction under 10 min: {frac_quick:.3f}  (paper: 0.87)",
                f"median: {np.median(q):.2f} min   p99: {np.percentile(q, 99):.0f} min"
                f"   max: {q.max() / 60:.1f} h",
                format_table(["bin centre (min)", "density"], rows, float_fmt="{}"),
            ]
        ),
    )

    # The paper's regime: most jobs quick, right tail out to days.
    assert 0.7 <= frac_quick <= 0.95
    assert q.max() > 24 * 60  # tail beyond one day
    assert np.median(q) < np.mean(q)  # right skew
    # Density concentrates at the low end: the first quarter of log-bins
    # carries more mass than the last quarter.
    d, e = series["density"], series["edges"]
    widths = np.diff(e)
    k = len(d) // 4
    assert (d[:k] * widths[:k]).sum() > (d[-k:] * widths[-k:]).sum()
