"""A9 — substrate fidelity: aggregate vs node-level placement.

The default simulator allocates at pool granularity; real Slurm places on
nodes, where fragmentation can delay jobs that "fit" in aggregate.  This
ablation reruns the identical submission stream under both modes and
compares the queue-time distribution — quantifying how much the
reproduction's default approximation matters (and demonstrating the
node-level mode end to end).
"""

import dataclasses

import numpy as np

from benchmarks.conftest import emit, once
from repro.eval.report import format_table
from repro.slurm.anvil import anvil_cluster
from repro.slurm.simulator import Simulator
from repro.workload.generator import generate_submissions


def test_a9_aggregate_vs_node_level(benchmark, bench_workload_config):
    cfg = dataclasses.replace(
        bench_workload_config, n_jobs=min(bench_workload_config.n_jobs, 20_000)
    )
    cluster = anvil_cluster(cfg.cluster_scale)
    table, pop = generate_submissions(cfg, cluster)

    def run_both():
        agg = Simulator(cluster, n_users=pop.n_users, node_level=False).run(table)
        node = Simulator(cluster, n_users=pop.n_users, node_level=True).run(table)
        return agg, node

    agg, node = once(benchmark, run_both)

    rows = []
    stats = {}
    for name, res in (("aggregate (default)", agg), ("node-level", node)):
        q = res.queue_time_min
        stats[name] = q
        rows.append(
            [
                name,
                100 * float(np.mean(q < 10)),
                float(np.mean(q)),
                float(np.percentile(q, 99)),
            ]
        )
    emit(
        "a9_placement_granularity",
        "\n".join(
            [
                format_table(
                    ["placement", "% under 10 min", "mean wait (min)", "p99 (min)"],
                    rows,
                ),
                "fragmentation can only delay jobs: node-level waits are "
                "never systematically shorter",
            ]
        ),
    )

    q_agg = stats["aggregate (default)"]
    q_node = stats["node-level"]
    # Same jobs, same stream; both modes keep the paper's regime.
    assert len(q_agg) == len(q_node)
    assert 0.6 < np.mean(q_agg < 10) < 0.99
    assert 0.6 < np.mean(q_node < 10) < 0.99
    # Fragmentation adds (or preserves) waiting in the mean, never a big win.
    assert np.mean(q_node) > 0.8 * np.mean(q_agg)
